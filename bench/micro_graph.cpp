// Component microbenchmarks: graph construction, traversal, I/O.
#include <benchmark/benchmark.h>

#include <sstream>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace {

using namespace ffp;

void BM_GraphFromEdges(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto proto = make_grid2d(side, side);
  std::vector<WeightedEdge> edges;
  for (VertexId v = 0; v < proto.num_vertices(); ++v) {
    for (VertexId u : proto.neighbors(v)) {
      if (u > v) edges.push_back({v, u, 1.0});
    }
  }
  for (auto _ : state) {
    auto g = Graph::from_edges(proto.num_vertices(), edges);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_GraphFromEdges)->Arg(16)->Arg(48);

void BM_NeighborScan(benchmark::State& state) {
  const auto g = make_random_geometric(2000, 0.04, 3);
  for (auto _ : state) {
    Weight total = 0.0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (Weight w : g.neighbor_weights(v)) total += w;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_NeighborScan);

void BM_ConnectedComponents(benchmark::State& state) {
  const auto g = make_random_geometric(3000, 0.03, 5);
  for (auto _ : state) {
    auto c = connected_components(g);
    benchmark::DoNotOptimize(c.count);
  }
}
BENCHMARK(BM_ConnectedComponents);

void BM_BfsDistances(benchmark::State& state) {
  const auto g = make_grid2d(60, 60);
  for (auto _ : state) {
    auto d = bfs_distances(g, 0);
    benchmark::DoNotOptimize(d.back());
  }
}
BENCHMARK(BM_BfsDistances);

void BM_InducedSubgraph(benchmark::State& state) {
  const auto g = make_grid2d(50, 50);
  std::vector<VertexId> half;
  for (VertexId v = 0; v < g.num_vertices() / 2; ++v) half.push_back(v);
  for (auto _ : state) {
    auto sub = induced_subgraph(g, half);
    benchmark::DoNotOptimize(sub.graph.num_edges());
  }
}
BENCHMARK(BM_InducedSubgraph);

void BM_ChacoRoundTrip(benchmark::State& state) {
  const auto g = with_random_weights(make_grid2d(30, 30), 1.0, 5.0, 7);
  for (auto _ : state) {
    std::ostringstream out;
    write_chaco(g, out);
    std::istringstream in(out.str());
    auto g2 = read_chaco(in);
    benchmark::DoNotOptimize(g2.num_edges());
  }
}
BENCHMARK(BM_ChacoRoundTrip);

}  // namespace
