#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace ffp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResets) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(31);
  const std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int p = rng.pick(items);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

TEST(Rng, WeightedPickZeroTotal) {
  Rng rng(37);
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.weighted_pick(w), w.size());
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng(41);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_pick(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(43);
  Rng child = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Splitmix, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 100, s2 = 100;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace ffp
