#include "partition/objectives.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ffp {
namespace {

// Path 0-1-2-3 (unit weights) split {0,1} | {2,3}:
//   cut(A) = cut(B) = 1, W(A) = W(B) = 2 (ordered pairs).
Partition path_bisection() {
  static const Graph g = make_path(4);
  return Partition::from_assignment(g, std::vector<int>{0, 0, 1, 1});
}

TEST(Objectives, CutOnPathBisection) {
  const auto p = path_bisection();
  EXPECT_DOUBLE_EQ(objective(ObjectiveKind::Cut).evaluate(p), 2.0);
}

TEST(Objectives, NcutOnPathBisection) {
  const auto p = path_bisection();
  // Each term: 1 / (1 + 2) = 1/3.
  EXPECT_NEAR(objective(ObjectiveKind::NormalizedCut).evaluate(p), 2.0 / 3.0,
              1e-12);
}

TEST(Objectives, McutOnPathBisection) {
  const auto p = path_bisection();
  // Each term: 1 / 2.
  EXPECT_NEAR(objective(ObjectiveKind::MinMaxCut).evaluate(p), 1.0, 1e-12);
}

TEST(Objectives, RatioCutOnPathBisection) {
  const auto p = path_bisection();
  // Each term: 1 / 2 vertices.
  EXPECT_NEAR(objective(ObjectiveKind::RatioCut).evaluate(p), 1.0, 1e-12);
}

TEST(Objectives, SinglePartIsZero) {
  const auto g = make_grid2d(3, 3);
  const Partition p(g, 1);
  for (auto kind : {ObjectiveKind::Cut, ObjectiveKind::NormalizedCut,
                    ObjectiveKind::MinMaxCut, ObjectiveKind::RatioCut}) {
    EXPECT_DOUBLE_EQ(objective(kind).evaluate(p), 0.0) << objective_name(kind);
  }
}

TEST(Objectives, McutPenalizesSingletonPart) {
  // Star: center in part 0, one leaf alone in part 1 (W = 0, cut = 1).
  const auto g = make_star(4);
  std::vector<int> assign(5, 0);
  assign[1] = 1;
  const auto p = Partition::from_assignment(g, assign, 2);
  const double mcut = objective(ObjectiveKind::MinMaxCut).evaluate(p);
  EXPECT_GE(mcut, kZeroDenominatorPenalty);
}

TEST(Objectives, NcutBoundedByPartCount) {
  // Each Ncut term is in [0, 1], so Ncut <= k on any partition.
  const auto g = make_torus(6, 6);
  Rng rng(4);
  std::vector<int> assign(36);
  for (auto& a : assign) a = static_cast<int>(rng.below(5));
  const auto p = Partition::from_assignment(g, assign, 5);
  const double ncut = objective(ObjectiveKind::NormalizedCut).evaluate(p);
  EXPECT_GE(ncut, 0.0);
  EXPECT_LE(ncut, 5.0);
}

TEST(Objectives, NamesAreStable) {
  EXPECT_EQ(objective_name(ObjectiveKind::Cut), "Cut");
  EXPECT_EQ(objective_name(ObjectiveKind::NormalizedCut), "Ncut");
  EXPECT_EQ(objective_name(ObjectiveKind::MinMaxCut), "Mcut");
  EXPECT_EQ(objective_name(ObjectiveKind::RatioCut), "RatioCut");
}

// Durable formats (journal payloads, the CLI, the wire protocol) store the
// token; if this round trip ever breaks, journal recovery silently skips
// every job it should resubmit.
TEST(Objectives, TokenRoundTripsThroughFromName) {
  for (const auto kind :
       {ObjectiveKind::Cut, ObjectiveKind::NormalizedCut,
        ObjectiveKind::MinMaxCut, ObjectiveKind::RatioCut}) {
    const auto parsed = objective_from_name(objective_token(kind));
    ASSERT_TRUE(parsed.has_value()) << objective_token(kind);
    EXPECT_EQ(*parsed, kind);
  }
  // The display name is NOT the token — recovery must never write it.
  EXPECT_EQ(objective_from_name(objective_name(ObjectiveKind::MinMaxCut)),
            std::nullopt);
}

TEST(Objectives, CutDeltaMatchesKnownMove) {
  const auto g = make_path(4);
  auto p = Partition::from_assignment(g, std::vector<int>{0, 0, 1, 1});
  // Moving vertex 1 to part 1: edge (0,1) becomes cut, (1,2) internal.
  const double delta = objective(ObjectiveKind::Cut).move_delta(p, 1, 1);
  EXPECT_DOUBLE_EQ(delta, 0.0);  // +2 for (0,1), −2 for (1,2)
  // Moving vertex 0 to part 1 makes the whole path internal to part 1.
  p.move(1, 1);
  EXPECT_DOUBLE_EQ(objective(ObjectiveKind::Cut).move_delta(p, 0, 1), -2.0);
}

TEST(Objectives, DeltaZeroForSamePart) {
  const auto p = path_bisection();
  for (auto kind : {ObjectiveKind::Cut, ObjectiveKind::NormalizedCut,
                    ObjectiveKind::MinMaxCut, ObjectiveKind::RatioCut}) {
    EXPECT_DOUBLE_EQ(objective(kind).move_delta(p, 0, p.part_of(0)), 0.0);
  }
}

TEST(Objectives, TrialMoveDeltaAgreesAndRestores) {
  const auto g = make_grid2d(4, 4);
  Rng rng(7);
  std::vector<int> assign(16);
  for (auto& a : assign) a = static_cast<int>(rng.below(3));
  auto p = Partition::from_assignment(g, assign, 3);
  const auto& fn = objective(ObjectiveKind::MinMaxCut);
  const auto before = std::vector<int>(p.assignment().begin(),
                                       p.assignment().end());
  const double fast = fn.move_delta(p, 5, (p.part_of(5) + 1) % 3);
  const double slow = trial_move_delta(p, 5, (p.part_of(5) + 1) % 3, fn);
  EXPECT_NEAR(fast, slow, 1e-9);
  EXPECT_TRUE(std::equal(before.begin(), before.end(),
                         p.assignment().begin()));
}

// Property: move_delta == evaluate(after) − evaluate(before) for every
// objective, across graph families, random states and random moves.
using DeltaParam = std::tuple<std::size_t, ObjectiveKind>;

class ObjectiveDeltaProperty : public ::testing::TestWithParam<DeltaParam> {};

TEST_P(ObjectiveDeltaProperty, DeltaMatchesEvaluateDifference) {
  const auto [graph_idx, kind] = GetParam();
  const auto cases = testing::property_graphs();
  const Graph& g = cases[graph_idx].graph;
  const auto& fn = objective(kind);
  const int k = 4;
  Rng rng(50 + graph_idx * 7 + static_cast<int>(kind));

  std::vector<int> assign(static_cast<std::size_t>(g.num_vertices()));
  for (auto& a : assign) a = static_cast<int>(rng.below(k));
  auto p = Partition::from_assignment(g, assign, k);

  double value = fn.evaluate(p);
  for (int step = 0; step < 250; ++step) {
    const auto v = static_cast<VertexId>(
        rng.below(static_cast<std::uint64_t>(g.num_vertices())));
    const int t = static_cast<int>(rng.below(k));
    const double delta = fn.move_delta(p, v, t);
    p.move(v, t);
    const double fresh = fn.evaluate(p);
    // Tolerance scales with the magnitudes involved: Mcut's zero-denominator
    // penalty puts values near 1e10+, where cancellation in (value + delta)
    // costs absolute precision even though both terms are exact.
    const double tol =
        1e-7 * std::max({1.0, std::abs(value), std::abs(fresh)});
    ASSERT_NEAR(value + delta, fresh, tol)
        << cases[graph_idx].name << " step " << step << ": " << value << " + "
        << delta << " != " << fresh;
    value = fresh;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllObjectives, ObjectiveDeltaProperty,
    ::testing::Combine(
        ::testing::Range<std::size_t>(0, 10),
        ::testing::Values(ObjectiveKind::Cut, ObjectiveKind::NormalizedCut,
                          ObjectiveKind::MinMaxCut, ObjectiveKind::RatioCut)),
    [](const ::testing::TestParamInfo<DeltaParam>& info) {
      const auto names = ffp::testing::property_graphs();
      return names[std::get<0>(info.param)].name + "_" +
             std::string(objective_name(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace ffp
