// Chaos suite: the whole serving stack — TcpServer + ServiceHost on one
// side, ServiceClient's retry loop on the other, over real loopback
// sockets — driven under every injected fault class (util/fault.hpp).
//
// The contract being proven, per fault class:
//   * no crash, no deadlock (ctest enforces a hard timeout);
//   * every failure a client sees is a STRUCTURED error event
//     (code + retryable), never a silent hang or a garbled line;
//   * completed jobs return byte-identical partitions to a fault-free
//     reference run — retry + resubmission is idempotent because
//     deterministic specs are result-cache keys, so a replayed job is a
//     lookup, not a second solve.
//
// Plus the shedding/drain behaviors that need a real accept loop:
// immediate structured rejection beyond max_clients, forbidden remote
// shutdown, and bounded graceful drain with a job in flight.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "util/fault.hpp"

namespace ffp {
namespace {

/// Every test leaves the global injector off, pass or fail.
struct FaultGuard {
  ~FaultGuard() { fault::configure(""); }
};

/// Host + TcpServer on an ephemeral port, run() pumping in a background
/// thread. The destructor drains.
struct ChaosServer {
  explicit ChaosServer(ServiceOptions sopt = service_defaults(),
                       TcpServerOptions topt = server_defaults())
      : host(std::move(sopt)),
        server(host, std::move(topt)),
        pump([this] { server.run(); }) {}

  ~ChaosServer() {
    server.request_stop();
    if (pump.joinable()) pump.join();
  }

  static ServiceOptions service_defaults() {
    ServiceOptions options;
    options.runners = 2;
    return options;
  }
  static TcpServerOptions server_defaults() {
    TcpServerOptions options;
    options.port = 0;
    options.idle_timeout_ms = 10000;
    options.write_timeout_ms = 10000;
    return options;
  }

  int port() const { return server.port(); }

  ServiceHost host;
  TcpServer server;
  std::thread pump;
};

/// A small deterministic batch: three step-budgeted jobs on an inline
/// 12-ring, distinct seeds.
std::vector<ClientJob> chaos_jobs() {
  std::string edges = "[";
  for (int v = 0; v < 12; ++v) {
    if (v > 0) edges += ",";
    edges += "[" + std::to_string(v) + "," + std::to_string((v + 1) % 12) +
             "]";
  }
  edges += "]";
  std::vector<ClientJob> jobs;
  for (int i = 0; i < 3; ++i) {
    const std::string id = "c" + std::to_string(i);
    jobs.push_back({id, "{\"op\":\"submit\",\"id\":\"" + id +
                            "\",\"graph\":{\"n\":12,\"edges\":" + edges +
                            "},\"k\":3,\"steps\":500,\"seed\":" +
                            std::to_string(7 + i) + "}"});
  }
  return jobs;
}

ServiceClientOptions chaos_client(int port) {
  ServiceClientOptions options;
  options.port = port;
  options.retry.max_attempts = 8;
  options.retry.base_ms = 5;
  options.retry.max_ms = 50;
  options.retry.seed = 11;
  options.io_timeout_ms = 10000;
  return options;
}

/// id → (partition, value) extracted from the raw result events.
std::map<std::string, std::pair<std::vector<int>, double>> outcomes(
    const std::vector<ClientResult>& results) {
  std::map<std::string, std::pair<std::vector<int>, double>> out;
  for (const ClientResult& r : results) {
    EXPECT_TRUE(r.ok) << r.id << " failed [" << err_name(r.code)
                      << "]: " << r.error;
    if (!r.ok) continue;
    const JsonValue event = JsonValue::parse(r.result_line);
    std::vector<int> parts;
    for (const auto& p : event.find("partition")->as_array()) {
      parts.push_back(static_cast<int>(p.as_int()));
    }
    out[r.id] = {std::move(parts), event.find("value")->as_number()};
  }
  return out;
}

/// The fault-free reference: computed once, compared against by every
/// chaos scenario. Fresh host per call, so no cross-run cache leaks.
const std::map<std::string, std::pair<std::vector<int>, double>>&
reference_outcomes() {
  static const auto reference = [] {
    FaultGuard guard;
    fault::configure("");
    ChaosServer server;
    ServiceClient client(chaos_client(server.port()));
    auto out = outcomes(client.run(chaos_jobs()));
    EXPECT_EQ(out.size(), 3u);
    return out;
  }();
  return reference;
}

/// One chaos scenario: run the standard batch under `spec`, expect full
/// success and byte-identical outcomes vs the reference.
void run_chaos_scenario(const std::string& spec, bool expect_fires) {
  const auto& reference = reference_outcomes();
  FaultGuard guard;
  ChaosServer server;
  fault::configure(spec);
  ServiceClient client(chaos_client(server.port()));
  const auto chaos = outcomes(client.run(chaos_jobs()));
  if (expect_fires) {
    EXPECT_GT(fault::fires(), 0) << "scenario injected nothing: " << spec;
  }
  fault::configure("");  // quiet before the server drains
  EXPECT_EQ(chaos, reference) << "results diverged under: " << spec;
}

TEST(RetryPolicy, BackoffIsDeterministicBoundedAndGrows) {
  RetryPolicy policy;
  policy.base_ms = 100;
  policy.max_ms = 1000;
  policy.seed = 9;
  double cap = policy.base_ms;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double wait = policy.backoff_ms(attempt);
    EXPECT_EQ(wait, policy.backoff_ms(attempt));  // deterministic
    EXPECT_GE(wait, cap / 2);                     // full jitter floor
    EXPECT_LE(wait, cap);                         // cap ceiling
    cap = std::min(cap * 2, policy.max_ms);
  }
  // Different seeds → different jitter.
  RetryPolicy other = policy;
  other.seed = 10;
  EXPECT_NE(policy.backoff_ms(3), other.backoff_ms(3));
}

TEST(Chaos, FaultFreeRoundTrip) {
  EXPECT_EQ(reference_outcomes().size(), 3u);
}

TEST(Chaos, SurvivesConnectionDrops) {
  run_chaos_scenario("conn_drop=1;seed=5;max_fires=3", true);
}

TEST(Chaos, SurvivesShortReads) {
  // Probability 1, no budget: EVERY recv in the scenario is one byte —
  // line framing must reassemble from maximal fragmentation.
  run_chaos_scenario("short_read=1;seed=5", true);
}

TEST(Chaos, SurvivesTornWrites) {
  run_chaos_scenario("torn_write=1;seed=5;max_fires=2", true);
}

TEST(Chaos, SurvivesDelayedResponses) {
  run_chaos_scenario("delay_response=1;delay_ms=30;seed=5;max_fires=4", true);
}

TEST(Chaos, SurvivesAcceptFailures) {
  run_chaos_scenario("accept_fail=1;seed=5;max_fires=2", true);
}

TEST(Chaos, SurvivesMixedFaults) {
  run_chaos_scenario(
      "conn_drop=0.3;short_read=0.3;torn_write=0.2;seed=17;max_fires=6",
      false /* probabilistic: may legitimately fire zero times */);
}

TEST(Chaos, OverloadShedsImmediatelyWithStructuredError) {
  TcpServerOptions topt = ChaosServer::server_defaults();
  topt.max_clients = 1;
  topt.overload_retry_after_ms = 123;
  ChaosServer server(ChaosServer::service_defaults(), topt);

  // First connection claims the only slot. Prove the claim landed (the
  // session answers) before dialing the next connection, so the shed is
  // deterministic, not a race with the accept loop.
  FdHandle holder = tcp_connect(server.port());
  {
    LineReader holder_reader(holder);
    holder_reader.set_timeout_ms(5000);
    write_line(holder, R"({"op":"status","id":"nope"})");
    std::string line;
    ASSERT_TRUE(holder_reader.next(line));
    ASSERT_EQ(JsonValue::parse(line).find("code")->as_string(),
              "unknown_job")
        << line;
  }

  // The second connection must be told "overloaded" IMMEDIATELY — not
  // queued behind the holder, not silently hung.
  FdHandle extra = tcp_connect(server.port());
  LineReader reader(extra);
  reader.set_timeout_ms(5000);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  const JsonValue event = JsonValue::parse(line);
  ASSERT_EQ(event.find("event")->as_string(), "error") << line;
  EXPECT_EQ(event.find("code")->as_string(), "overloaded") << line;
  EXPECT_TRUE(event.find("retryable")->as_bool()) << line;
  EXPECT_EQ(event.find("retry_after_ms")->as_number(), 123.0) << line;
  EXPECT_FALSE(reader.next(line));  // ... and then closed.
  extra.reset();

  // And once the holder leaves, a retrying client gets real service.
  holder.reset();
  ServiceClient client(chaos_client(server.port()));
  const auto results = client.run(chaos_jobs());
  EXPECT_EQ(outcomes(results), reference_outcomes());
}

TEST(Chaos, IdleConnectionsAreReapedWithAStructuredGoodbye) {
  TcpServerOptions topt = ChaosServer::server_defaults();
  topt.idle_timeout_ms = 200;  // a silent client loses its slot fast
  ChaosServer server(ChaosServer::service_defaults(), topt);

  FdHandle idle = tcp_connect(server.port());
  LineReader reader(idle);
  reader.set_timeout_ms(5000);
  std::string line;
  // Send nothing: within the idle window the server reaps us with a
  // retryable timeout error, then closes.
  ASSERT_TRUE(reader.next(line));
  const JsonValue event = JsonValue::parse(line);
  EXPECT_EQ(event.find("event")->as_string(), "error") << line;
  EXPECT_EQ(event.find("code")->as_string(), "timeout") << line;
  EXPECT_TRUE(event.find("retryable")->as_bool()) << line;
  EXPECT_FALSE(reader.next(line));

  // The freed slot serves the next client normally.
  FdHandle live = tcp_connect(server.port());
  LineReader live_reader(live);
  live_reader.set_timeout_ms(5000);
  write_line(live, chaos_jobs()[0].submit_line);
  ASSERT_TRUE(live_reader.next(line));
  EXPECT_EQ(JsonValue::parse(line).find("event")->as_string(), "ack") << line;
}

TEST(Chaos, RemoteShutdownForbiddenByDefaultPolicy) {
  TcpServerOptions topt = ChaosServer::server_defaults();
  topt.session.allow_shutdown = false;  // what ffp_serve defaults to on TCP
  ChaosServer server(ChaosServer::service_defaults(), topt);

  FdHandle conn = tcp_connect(server.port());
  LineReader reader(conn);
  reader.set_timeout_ms(5000);
  write_line(conn, R"({"op":"shutdown"})");
  std::string line;
  ASSERT_TRUE(reader.next(line));
  const JsonValue event = JsonValue::parse(line);
  EXPECT_EQ(event.find("event")->as_string(), "error") << line;
  EXPECT_EQ(event.find("code")->as_string(), "forbidden") << line;
  EXPECT_FALSE(event.find("retryable")->as_bool()) << line;

  // The connection survived the refusal and still serves requests.
  write_line(conn, chaos_jobs()[0].submit_line);
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(JsonValue::parse(line).find("event")->as_string(), "ack") << line;
}

TEST(Chaos, GracefulDrainWithAJobInFlight) {
  ChaosServer server;
  FdHandle conn = tcp_connect(server.port());
  LineReader reader(conn);
  reader.set_timeout_ms(5000);
  // A wall-clock job long enough to still be running at the stop signal.
  write_line(conn,
             R"({"op":"submit","id":"slow","graph":{"n":8,"edges":)"
             R"([[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,0]]},)"
             R"("k":2,"budget_ms":60000})");
  std::string line;
  ASSERT_TRUE(reader.next(line));
  ASSERT_EQ(JsonValue::parse(line).find("event")->as_string(), "ack") << line;

  // SIGTERM path: the drain must cancel the running job (anytime
  // semantics) and return well within the teardown deadline — the ctest
  // timeout is the real assertion here.
  server.server.request_stop();
  server.pump.join();
  // Idempotent: the ChaosServer destructor stops again harmlessly.
}

}  // namespace
}  // namespace ffp
