// Crash recovery, end to end. In-process: persisted results reload across
// an Engine restart, journaled jobs are resubmitted, a clean shutdown
// leaves nothing to recover, warm-start resume is monotone on every
// generator family, and persistence observes without perturbing results.
// Out of process: a real ffp_serve is SIGKILLed mid-batch (and crashed
// deterministically via FFP_FAULT=crash_after_append), restarted on the
// same --state-dir, and must serve the identical bytes a crash-free run
// produces.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ffp/api.hpp"
#include "persist/atomic_file.hpp"
#include "persist/checkpoint.hpp"
#include "persist/journal.hpp"
#include "service/client.hpp"
#include "service/json.hpp"

namespace ffp {
namespace {

/// A fresh (emptied) durable-state directory under the test temp root.
std::string state_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  for (const std::string sub : {"cache", "checkpoints", "graphs"}) {
    const std::string subdir = dir + "/" + sub;
    for (const std::string& f : persist::list_dir(subdir)) {
      persist::remove_file(subdir + "/" + f);
    }
  }
  persist::remove_file(dir + "/journal.rec");
  return dir;
}

std::vector<int> assignment_of(const Partition& p) {
  return {p.assignment().begin(), p.assignment().end()};
}

api::SolveSpec small_spec() {
  api::SolveSpec spec;
  spec.method = "fusion_fission";
  spec.k = 3;
  spec.seed = 2006;
  spec.steps = 800;  // deterministic -> journaled, cacheable
  return spec;
}

// ------------------------------------------------------- in-process ----

TEST(Recovery, PersistedResultsSurviveRestart) {
  const std::string dir = state_dir("rec_persisted");
  const api::Problem problem = api::Problem::generated("grid2d:10,10");
  std::vector<int> first;
  double first_value = 0.0;
  {
    api::EngineOptions options;
    options.state_dir = dir;
    api::Engine engine(options);
    EXPECT_EQ(engine.recovered_jobs(), 0u);
    const SolverResult result = engine.solve(problem, small_spec());
    first = assignment_of(result.best);
    first_value = result.best_value;
  }
  // Clean shutdown: every journal entry went terminal, so the journal
  // compacted down to nothing to recover.
  const auto replay = persist::Journal::replay(dir + "/journal.rec");
  EXPECT_TRUE(replay.unfinished.empty());
  EXPECT_FALSE(replay.truncated);

  // A fresh process over the same state dir answers the same spec from
  // the persisted cache: terminal at submit, byte-identical partition.
  api::EngineOptions options;
  options.state_dir = dir;
  api::Engine engine(options);
  EXPECT_EQ(engine.recovered_jobs(), 0u);
  const api::SolveHandle handle =
      engine.submit(api::Problem::generated("grid2d:10,10"), small_spec());
  EXPECT_TRUE(handle.cached());
  const JobStatus status = handle.wait();
  ASSERT_EQ(status.state, JobState::Done);
  ASSERT_NE(status.result, nullptr);
  EXPECT_EQ(assignment_of(status.result->best), first);
  EXPECT_EQ(status.result->best_value, first_value);
}

TEST(Recovery, JournaledJobsAreResubmittedOnRecovery) {
  const std::string dir = state_dir("rec_resubmit");
  // Simulate a crash that left one submitted-but-unfinished job behind:
  // hand-append a journal record in the engine's payload format.
  persist::ensure_dir(dir);
  {
    persist::Journal journal(dir + "/journal.rec");
    journal.submitted(1,
                      "graph=grid2d:8,8\n"
                      "method=fusion_fission\n"
                      "k=3\n"
                      "objective=mcut\n"
                      "seed=11\n"
                      "steps=600\n"
                      "budget_ms=5000\n"
                      "restarts=1\n"
                      "threads=0\n"
                      "priority=0\n"
                      "queue_ttl_ms=0\n"
                      "checkpoint_every_ms=0\n"
                      "warm_start=0\n");
    // Journal destructor does NOT write a terminal record — exactly the
    // on-disk state a kill -9 between submit and finish leaves.
  }

  api::EngineOptions options;
  options.state_dir = dir;
  api::Engine engine(options);
  EXPECT_EQ(engine.recovered_jobs(), 1u);
  engine.drain();

  // The recovered job ran to completion and persisted: the identical
  // direct submission is now a cache hit, not a second solve.
  api::SolveSpec spec;
  spec.method = "fusion_fission";
  spec.k = 3;
  spec.seed = 11;
  spec.steps = 600;
  const api::SolveHandle handle =
      engine.submit(api::Problem::generated("grid2d:8,8"), spec);
  EXPECT_TRUE(handle.cached());
  EXPECT_EQ(handle.wait().state, JobState::Done);
}

TEST(Recovery, UnparsableJournalPayloadsAreSkippedNotFatal) {
  const std::string dir = state_dir("rec_bad_payload");
  persist::ensure_dir(dir);
  {
    persist::Journal journal(dir + "/journal.rec");
    journal.submitted(1, "this is not a payload");
    journal.submitted(2,
                      "graph=grid2d:6,6\n"
                      "method=fusion_fission\n"
                      "k=2\n"
                      "objective=mcut\n"
                      "seed=5\n"
                      "steps=400\n"
                      "budget_ms=5000\n"
                      "restarts=1\n"
                      "threads=0\n"
                      "priority=0\n"
                      "queue_ttl_ms=0\n"
                      "checkpoint_every_ms=0\n"
                      "warm_start=0\n");
  }
  api::EngineOptions options;
  options.state_dir = dir;
  api::Engine engine(options);
  // The rotten payload is skipped with a note; the good one still runs.
  EXPECT_EQ(engine.recovered_jobs(), 1u);
  engine.drain();
}

TEST(Recovery, WarmStartNeverWorseThanItsCheckpointOnEveryFamily) {
  int family_index = 0;
  for (const std::string family :
       {"grid2d:12,12", "torus:12,12", "geometric:140,0.18,5",
        "powerlaw:140,6,2.5,5"}) {
    const std::string dir =
        state_dir("rec_warm_" + std::to_string(family_index++));
    const api::Problem problem = api::Problem::generated(family);

    api::SolveSpec spec;
    spec.method = "fusion_fission";
    spec.k = 4;
    spec.seed = 2006;
    spec.steps = 1500;
    spec.checkpoint_every_ms = 50;  // the final flush always lands

    double checkpointed = 0.0;
    {
      api::EngineOptions options;
      options.state_dir = dir;
      api::Engine engine(options);
      checkpointed = engine.solve(problem, spec).best_value;
    }

    // The durable checkpoint holds exactly what the run reported.
    const std::string ckpath = persist::checkpoint_path(
        dir + "/checkpoints", problem.digest(),
        spec.checkpoint_key(spec.resolve()));
    const auto ck = persist::load_checkpoint(ckpath);
    ASSERT_TRUE(ck.has_value()) << family;
    EXPECT_EQ(ck->value, checkpointed) << family;

    // Resume IN A FRESH PROCESS from the durable checkpoint. The spec
    // identity (steps included) names the checkpoint, so the resumed run
    // carries the same budget — and must never report anything worse.
    api::SolveSpec resume = spec;
    resume.warm_start = true;
    resume.checkpoint_every_ms = 0;
    api::EngineOptions options;
    options.state_dir = dir;
    api::Engine engine(options);
    const double resumed = engine.solve(problem, resume).best_value;
    EXPECT_LE(resumed, checkpointed) << family;
  }
}

TEST(Recovery, PersistenceObservesWithoutPerturbingResults) {
  const api::Problem problem = api::Problem::generated("torus:10,10");
  std::vector<int> plain;
  {
    api::Engine engine;  // no state dir: the historical in-memory engine
    plain = assignment_of(engine.solve(problem, small_spec()).best);
  }
  api::EngineOptions options;
  options.state_dir = state_dir("rec_bit_identical");
  api::Engine engine(options);
  EXPECT_EQ(assignment_of(engine.solve(problem, small_spec()).best), plain);
}

// --------------------------------------------------- process drills ----

/// One ffp_serve child on an ephemeral port with a durable state dir,
/// stderr piped so the test can read the "listening on" line.
struct ServeProc {
  pid_t pid = -1;
  int port = 0;
  int err_fd = -1;
  std::string banner;  // stderr up to (and including) the listening line

  /// Journaled jobs the server's startup banner says it resubmitted, or
  /// -1 if the banner has no recovery line.
  int recovered() const {
    const std::size_t at = banner.find("recovered ");
    if (at == std::string::npos) return -1;
    return std::atoi(banner.c_str() + at + 10);
  }

  ~ServeProc() {
    if (err_fd >= 0) ::close(err_fd);
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }

  void sigkill() {
    ASSERT_GT(pid, 0);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    pid = -1;
  }

  /// Waits for exit and returns the exit code (-1 on signal death).
  int wait_exit() {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) return -2;
    pid = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
};

void spawn_serve(ServeProc& proc, const std::string& dir,
                 const char* fault_spec) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(fds[1], 2);
    ::close(fds[0]);
    ::close(fds[1]);
    if (fault_spec != nullptr) {
      ::setenv("FFP_FAULT", fault_spec, 1);
    } else {
      ::unsetenv("FFP_FAULT");
    }
    ::execl("./ffp_serve", "ffp_serve", "--listen", "0", "--runners", "2",
            "--state-dir", dir.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed: tests must run from the build dir
  }
  ::close(fds[1]);
  proc.pid = pid;
  proc.err_fd = fds[0];
  // Read stderr byte-wise until the listening line announces the port.
  std::string text;
  char c = 0;
  while (text.find("listening on 127.0.0.1:") == std::string::npos ||
         text.find('\n', text.find("listening on")) == std::string::npos) {
    const ssize_t n = ::read(proc.err_fd, &c, 1);
    ASSERT_GT(n, 0) << "ffp_serve died before listening; stderr:\n" << text;
    text.push_back(c);
  }
  const std::size_t colon = text.find("127.0.0.1:");
  proc.port = std::atoi(text.c_str() + colon + 10);
  ASSERT_GT(proc.port, 0) << text;
  proc.banner = std::move(text);
}

/// Six deterministic jobs on an inline 16-ring, distinct seeds — enough
/// work that a SIGKILL a few ms in lands mid-batch.
std::vector<ClientJob> drill_jobs() {
  std::string edges = "[";
  for (int v = 0; v < 16; ++v) {
    if (v > 0) edges += ",";
    edges +=
        "[" + std::to_string(v) + "," + std::to_string((v + 1) % 16) + "]";
  }
  edges += "]";
  std::vector<ClientJob> jobs;
  for (int i = 0; i < 6; ++i) {
    const std::string id = "d" + std::to_string(i);
    jobs.push_back({id, "{\"op\":\"submit\",\"id\":\"" + id +
                            "\",\"graph\":{\"n\":16,\"edges\":" + edges +
                            "},\"k\":4,\"steps\":2000,\"seed\":" +
                            std::to_string(20 + i) + "}"});
  }
  return jobs;
}

ServiceClientOptions drill_client(int port) {
  ServiceClientOptions options;
  options.port = port;
  options.retry.max_attempts = 6;
  options.retry.base_ms = 5;
  options.retry.max_ms = 40;
  options.retry.seed = 13;
  options.io_timeout_ms = 20000;
  return options;
}

/// id -> (partition, value); requires every job to have succeeded when
/// `must_succeed` (the post-recovery pass), tolerates failures otherwise
/// (the pass the crash interrupts).
std::map<std::string, std::pair<std::vector<int>, double>> drill_outcomes(
    const std::vector<ClientResult>& results, bool must_succeed) {
  std::map<std::string, std::pair<std::vector<int>, double>> out;
  for (const ClientResult& r : results) {
    if (must_succeed) {
      EXPECT_TRUE(r.ok) << r.id << " failed [" << err_name(r.code)
                        << "]: " << r.error;
    }
    if (!r.ok) continue;
    const JsonValue event = JsonValue::parse(r.result_line);
    std::vector<int> parts;
    for (const auto& p : event.find("partition")->as_array()) {
      parts.push_back(static_cast<int>(p.as_int()));
    }
    out[r.id] = {std::move(parts), event.find("value")->as_number()};
  }
  return out;
}

/// The crash-free reference: one clean ffp_serve run over its own state
/// dir, computed once and shared by both drills.
const std::map<std::string, std::pair<std::vector<int>, double>>&
drill_reference() {
  static const auto reference = [] {
    ServeProc proc;
    spawn_serve(proc, state_dir("drill_reference"), nullptr);
    ServiceClient client(drill_client(proc.port));
    auto out = drill_outcomes(client.run(drill_jobs()), true);
    EXPECT_EQ(out.size(), 6u);
    return out;
  }();
  return reference;
}

TEST(RecoveryDrill, SigkillMidBatchThenRestartServesIdenticalBytes) {
  const auto& reference = drill_reference();
  ASSERT_EQ(reference.size(), 6u);
  const std::string dir = state_dir("drill_sigkill");

  ServeProc first;
  spawn_serve(first, dir, nullptr);
  // Run the batch from a background thread and SIGKILL the server while
  // it is (very likely) mid-batch. However the timing lands, the contract
  // is the same: whatever this pass lost, the restart must make whole.
  std::vector<ClientResult> interrupted;
  std::thread batch([&] {
    ServiceClient client(drill_client(first.port));
    interrupted = client.run(drill_jobs());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  first.sigkill();
  batch.join();
  drill_outcomes(interrupted, false);  // failures expected; just parseable

  // Restart on the same state dir: journal replay resubmits what the
  // crash orphaned, the persisted cache answers what already finished,
  // and the rerun batch is byte-identical to the crash-free run.
  ServeProc second;
  spawn_serve(second, dir, nullptr);
  ServiceClient client(drill_client(second.port));
  const auto recovered = drill_outcomes(client.run(drill_jobs()), true);
  EXPECT_EQ(recovered, reference);
}

TEST(RecoveryDrill, CrashAfterAppendFaultThenRestartServesIdenticalBytes) {
  const auto& reference = drill_reference();
  const std::string dir = state_dir("drill_fault");

  // FFP_FAULT kills the server (exit 137, as kill -9 would) immediately
  // after the FIRST journal append becomes durable — the sharpest window:
  // the job is on disk, nothing has acted on it, no ack ever went out.
  ServeProc first;
  spawn_serve(first, dir, "crash_after_append=1;max_fires=1");
  {
    ServiceClient client(drill_client(first.port));
    client.run(drill_jobs());  // the crash fails these; outcomes irrelevant
  }
  EXPECT_EQ(first.wait_exit(), 137);

  // The durable append left real recovery work behind.
  const auto replay = persist::Journal::replay(dir + "/journal.rec");
  EXPECT_GE(replay.unfinished.size(), 1u);

  ServeProc second;
  spawn_serve(second, dir, nullptr);
  // The restart must actually REPLAY (parse the real journal payload and
  // resubmit), not merely limp past it and lean on the client's retry —
  // that distinction is exactly what the banner count pins down.
  EXPECT_GE(second.recovered(), 1) << second.banner;
  ServiceClient client(drill_client(second.port));
  const auto recovered = drill_outcomes(client.run(drill_jobs()), true);
  EXPECT_EQ(recovered, reference);
}

}  // namespace
}  // namespace ffp
