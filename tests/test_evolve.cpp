// The evolutionary engine (src/evolve/): archive admission/eviction
// policy, overlay crossover properties, the memetic never-worsen-the-
// better-parent contract on all four generator families, plan determinism
// and thread-count invariance through the facade, persisted-population
// round trips, and the acceptance criterion — sequential evolve
// submissions yield monotone non-increasing best cuts.
#include "evolve/elite_archive.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "evolve/operators.hpp"
#include "evolve/plan.hpp"
#include "ffp/api.hpp"
#include "graph/generators.hpp"
#include "partition/objectives.hpp"
#include "persist/atomic_file.hpp"
#include "service/thread_budget.hpp"
#include "solver/registry.hpp"

namespace ffp {
namespace {

Graph family_graph(const std::string& family) {
  if (family == "grid") return make_grid2d(12, 12);
  if (family == "torus") return make_torus(12, 12);
  if (family == "geometric") return make_random_geometric(140, 0.18, 5);
  return make_power_law(140, 6.0, 2.5, 5);
}

const std::vector<std::string> kFamilies = {"grid", "torus", "geometric",
                                            "powerlaw"};

std::string tmp_dir(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<int> assignment_of(const Partition& p) {
  return {p.assignment().begin(), p.assignment().end()};
}

/// n-vertex assignment: `flips` leading vertices in part `part`, rest 0.
std::vector<int> blocky(int n, int flips, int part) {
  std::vector<int> out(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < flips; ++i) out[static_cast<std::size_t>(i)] = part;
  return out;
}

// ---------------------------------------------------------------- archive --

TEST(EliteArchive, AdmissionEvictionAndDiversity) {
  evolve::ArchiveOptions opt;
  opt.capacity = 3;
  evolve::EliteArchive archive(opt);
  const evolve::PopulationKey key{123, 4, ObjectiveKind::MinMaxCut};
  const int n = 256;  // near-duplicate threshold: max(1, 256/64) = 4

  std::vector<int> a1(n, 0), a2(n, 0), a3(n, 0);
  for (int i = 0; i < 64; ++i) a1[static_cast<std::size_t>(i)] = 1;
  for (int i = 64; i < 128; ++i) a2[static_cast<std::size_t>(i)] = 1;
  for (int i = 128; i < 192; ++i) a3[static_cast<std::size_t>(i)] = 1;
  EXPECT_TRUE(archive.admit(key, a1, 10.0));
  EXPECT_TRUE(archive.admit(key, a2, 8.0));
  EXPECT_TRUE(archive.admit(key, a3, 9.0));

  // Exact duplicates never re-enter; a lower rendering refreshes in place.
  EXPECT_FALSE(archive.admit(key, a1, 10.0));
  EXPECT_FALSE(archive.admit(key, a1, 9.5));
  auto snap = archive.snapshot(key);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].value, 8.0);  // best-first order
  EXPECT_EQ(snap[1].value, 9.0);
  EXPECT_EQ(snap[2].value, 9.5);  // refreshed down from 10.0

  // At capacity: worse than the worst is rejected, better displaces it.
  const std::vector<int> a4 = blocky(n, 32, 2);
  EXPECT_FALSE(archive.admit(key, a4, 11.0));
  EXPECT_TRUE(archive.admit(key, a4, 7.0));
  snap = archive.snapshot(key);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].value, 7.0);
  EXPECT_EQ(snap[2].value, 9.0);  // the refreshed a1 was the evictee

  // Near-duplicate (hamming 1 < 4 from a4): equal value is rejected; a
  // strict improvement REPLACES its sibling instead of growing the
  // population with one basin.
  std::vector<int> near = a4;
  near[0] = 3;
  EXPECT_FALSE(archive.admit(key, near, 7.0));
  EXPECT_TRUE(archive.admit(key, near, 6.5));
  snap = archive.snapshot(key);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].value, 6.5);
  EXPECT_EQ(*snap[0].assignment, near);

  const evolve::ArchiveCounters c = archive.counters();
  EXPECT_EQ(c.elites, 3);
  EXPECT_EQ(c.populations, 1);
  EXPECT_EQ(c.capacity, 3);
  EXPECT_EQ(c.admitted, 5);  // a1 a2 a3 + a4 + near
  EXPECT_EQ(c.evicted, 2);   // refreshed-a1 displaced, a4 replaced
  EXPECT_EQ(c.rejected, 4);
  EXPECT_GE(c.lookups, 3);
  EXPECT_GE(c.hits, 3);
}

TEST(EliteArchive, DistinctKeysAreDistinctPopulationsAndZeroCapacityIsOff) {
  evolve::EliteArchive archive({2, ""});
  const std::vector<int> a = blocky(64, 16, 1);
  EXPECT_TRUE(archive.admit({1, 2, ObjectiveKind::Cut}, a, 5.0));
  EXPECT_TRUE(archive.admit({1, 3, ObjectiveKind::Cut}, a, 5.0));
  EXPECT_TRUE(archive.admit({2, 2, ObjectiveKind::Cut}, a, 5.0));
  EXPECT_TRUE(archive.admit({1, 2, ObjectiveKind::NormalizedCut}, a, 5.0));
  EXPECT_EQ(archive.counters().populations, 4);
  EXPECT_EQ(archive.best_value({1, 2, ObjectiveKind::Cut}).value_or(-1), 5.0);
  EXPECT_FALSE(archive.best_value({9, 9, ObjectiveKind::Cut}).has_value());

  evolve::EliteArchive off({0, ""});
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.admit({1, 2, ObjectiveKind::Cut}, a, 5.0));
  EXPECT_TRUE(off.snapshot({1, 2, ObjectiveKind::Cut}).empty());
}

TEST(EliteArchive, PersistedPopulationsSurviveRestart) {
  const std::string dir = tmp_dir("evolve_persist");
  for (const std::string& name : persist::list_dir(dir)) {
    persist::remove_file(dir + "/" + name);
  }
  const evolve::PopulationKey key{0xabcdef12u, 3, ObjectiveKind::Cut};
  const std::vector<int> a1 = blocky(96, 30, 1);
  const std::vector<int> a2 = blocky(96, 60, 2);
  {
    evolve::EliteArchive archive({4, dir});
    EXPECT_TRUE(archive.admit(key, a1, 4.25));
    EXPECT_TRUE(archive.admit(key, a2, 3.5));
  }
  // A fresh archive over the same directory reloads the population:
  // values, assignments, and admission stamps all round-trip.
  evolve::EliteArchive reloaded({4, dir});
  const auto snap = reloaded.snapshot(key);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].value, 3.5);
  EXPECT_EQ(*snap[0].assignment, a2);
  EXPECT_EQ(snap[1].value, 4.25);
  EXPECT_EQ(*snap[1].assignment, a1);
  EXPECT_GT(snap[0].stamp, snap[1].stamp);

  // Damage is crash-only: a corrupted population file is removed and
  // forgotten, never trusted.
  ASSERT_EQ(persist::list_dir(dir).size(), 1u);
  const std::string path = dir + "/" + persist::list_dir(dir).front();
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << "garbage";
  }
  evolve::EliteArchive after_damage({4, dir});
  EXPECT_TRUE(after_damage.snapshot(key).empty());
  EXPECT_TRUE(persist::list_dir(dir).empty());
}

// --------------------------------------------------------------- overlay ---

TEST(Operators, OverlayIsACommonRefinementCoveringAllVertices) {
  const Graph g = family_graph("grid");
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  // Vertical vs horizontal halves of the 12x12 grid.
  std::vector<int> a(n), b(n);
  for (std::size_t v = 0; v < n; ++v) {
    a[v] = static_cast<int>(v % 12 < 6 ? 0 : 1);
    b[v] = static_cast<int>(v / 12 < 6 ? 0 : 1);
  }
  const std::vector<int> overlay = evolve::overlay_assignment(g, a, b);
  ASSERT_EQ(overlay.size(), n);

  int max_label = 0;
  for (const int p : overlay) {
    EXPECT_GE(p, 0);
    max_label = std::max(max_label, p);
  }
  // The quadrant overlay: exactly 4 blocks, labeled 0..3 in discovery
  // order, each constant in BOTH parents (the refinement property).
  EXPECT_EQ(max_label, 3);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (overlay[u] == overlay[v]) {
        EXPECT_EQ(a[u], a[v]);
        EXPECT_EQ(b[u], b[v]);
      }
    }
  }
  // Identical parents: the overlay is the connected-component refinement
  // of the parent itself — on a connected agreement region, the parent.
  const std::vector<int> self = evolve::overlay_assignment(g, a, a);
  int self_max = 0;
  for (const int p : self) self_max = std::max(self_max, p);
  EXPECT_EQ(self_max, 1);
}

// ---------------------------------------------------- memetic contract -----

// The acceptance-pinned crossover contract, on every generator family:
// an offspring bred from two FF parents via overlay warm start + the
// better parent riding the incumbent channel NEVER evaluates worse than
// that better parent — even under a tiny offspring budget.
TEST(Operators, CrossoverNeverWorsensBetterParentOnAllFamilies) {
  for (const std::string& family : kFamilies) {
    const Graph g = family_graph(family);
    const SolverPtr solver = make_solver("fusion_fission");
    SolverRequest request;
    request.k = 5;
    request.objective = ObjectiveKind::MinMaxCut;
    request.stop = StopCondition::after_steps(900);

    request.seed = 41;
    const SolverResult p1 = solver->run(g, request);
    request.seed = 42;
    const SolverResult p2 = solver->run(g, request);
    const SolverResult& better = p1.best_value <= p2.best_value ? p1 : p2;
    const SolverResult& other = p1.best_value <= p2.best_value ? p2 : p1;

    SolverRequest offspring = request;
    offspring.seed = 43;
    offspring.stop = StopCondition::after_steps(60);  // starved on purpose
    offspring.warm_start = std::make_shared<const std::vector<int>>(
        evolve::overlay_assignment(g, better.best.assignment(),
                                   other.best.assignment()));
    offspring.warm_start_value = std::numeric_limits<double>::infinity();
    offspring.incumbent = std::make_shared<const std::vector<int>>(
        assignment_of(better.best));
    offspring.incumbent_value = better.best_value;
    const SolverResult child = solver->run(g, offspring);
    EXPECT_LE(child.best_value, better.best_value)
        << family << ": offspring worsened the better parent";
  }
}

// mlff honors the incumbent as a post-hoc guard (its coarsening cannot
// seed mid-search): same contract, direct adapter path.
TEST(Operators, MlffHonorsIncumbentGuard) {
  const Graph g = family_graph("geometric");
  const SolverPtr solver = make_solver("mlff");
  SolverRequest request;
  request.k = 4;
  request.objective = ObjectiveKind::MinMaxCut;
  request.stop = StopCondition::after_steps(400);
  request.seed = 7;
  const SolverResult parent = solver->run(g, request);

  SolverRequest capped = request;
  capped.seed = 8;
  capped.stop = StopCondition::after_steps(40);
  capped.incumbent =
      std::make_shared<const std::vector<int>>(assignment_of(parent.best));
  capped.incumbent_value = parent.best_value;
  const SolverResult child = solver->run(g, capped);
  EXPECT_LE(child.best_value, parent.best_value);
}

// -------------------------------------------------------------- planning ---

TEST(EvolvePlan, DeterministicShapeAndParentSelection) {
  evolve::EliteArchive archive({8, ""});
  const evolve::PopulationKey key{77, 3, ObjectiveKind::MinMaxCut};
  const int n = 128;
  archive.admit(key, blocky(n, 20, 1), 5.0);
  archive.admit(key, blocky(n, 40, 1), 4.0);
  archive.admit(key, blocky(n, 60, 1), 6.0);

  const auto plan = evolve::plan_evolve(archive, key, 7, 99,
                                        /*allow_crossover=*/true,
                                        static_cast<std::size_t>(n));
  ASSERT_EQ(plan.restarts.size(), 7u);
  ASSERT_EQ(plan.population.size(), 3u);
  EXPECT_EQ(plan.population[0].value, 4.0);  // best-first snapshot

  // Restart 0 is the monotonicity anchor: mutate the best elite.
  EXPECT_EQ(plan.restarts[0].kind, evolve::RestartKind::Mutate);
  EXPECT_EQ(plan.restarts[0].parent_a, 0);
  // The i>=1 cycle: crossover, cold, mutate, crossover, ...
  EXPECT_EQ(plan.restarts[1].kind, evolve::RestartKind::Crossover);
  EXPECT_EQ(plan.restarts[2].kind, evolve::RestartKind::Cold);
  EXPECT_EQ(plan.restarts[3].kind, evolve::RestartKind::Mutate);
  EXPECT_EQ(plan.restarts[4].kind, evolve::RestartKind::Crossover);
  for (const auto& r : plan.restarts) {
    if (r.kind == evolve::RestartKind::Crossover) {
      EXPECT_GE(r.parent_a, 0);
      EXPECT_LT(r.parent_a, r.parent_b);  // distinct, better-first
      EXPECT_LT(r.parent_b, 3);
    }
  }

  // Pure function of (archive state, seed): same inputs, same plan.
  const auto again = evolve::plan_evolve(archive, key, 7, 99, true,
                                         static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < plan.restarts.size(); ++i) {
    EXPECT_EQ(plan.restarts[i].kind, again.restarts[i].kind);
    EXPECT_EQ(plan.restarts[i].parent_a, again.restarts[i].parent_a);
    EXPECT_EQ(plan.restarts[i].parent_b, again.restarts[i].parent_b);
  }

  // No crossover permission (mlff) → mutate/cold only.
  const auto mlff = evolve::plan_evolve(archive, key, 7, 99, false,
                                        static_cast<std::size_t>(n));
  for (const auto& r : mlff.restarts) {
    EXPECT_NE(r.kind, evolve::RestartKind::Crossover);
  }

  // Empty population → every restart degrades to cold.
  const evolve::PopulationKey unseen{1234, 3, ObjectiveKind::MinMaxCut};
  const auto cold = evolve::plan_evolve(archive, unseen, 4, 99, true, 128);
  for (const auto& r : cold.restarts) {
    EXPECT_EQ(r.kind, evolve::RestartKind::Cold);
  }
  EXPECT_EQ(cold.seeded, 0);
}

// ---------------------------------------------------------------- engine ---

api::SolveSpec evolve_spec(int k, std::uint64_t seed, std::int64_t steps,
                           int restarts, unsigned threads) {
  api::SolveSpec spec;
  spec.k = k;
  spec.seed = seed;
  spec.steps = steps;
  spec.restarts = restarts;
  spec.threads = threads;
  spec.evolve = true;
  return spec;
}

// Acceptance criterion: for a fixed spec and archive state the evolve
// portfolio is byte-identical at 1 worker and at 8.
TEST(EvolveEngine, ByteIdenticalAcrossThreadCounts) {
  const Graph g = family_graph("torus");
  std::vector<std::vector<int>> results;
  for (const unsigned threads : {1u, 8u}) {
    ThreadBudget budget(threads);
    api::EngineOptions options;
    options.budget = &budget;
    api::Engine engine(options);
    // Identical priming: one deterministic plain solve feeds the archive
    // the same elite in both engines.
    api::SolveSpec prime;
    prime.k = 4;
    prime.seed = 11;
    prime.steps = 900;
    engine.solve(api::Problem::viewing(g), prime);
    results.push_back(assignment_of(
        engine.solve(api::Problem::viewing(g), evolve_spec(4, 33, 700, 4, threads))
            .best));
  }
  EXPECT_EQ(results[0], results[1])
      << "evolve portfolio diverged across thread counts";
}

// Acceptance criterion: five sequential evolve submissions on one graph
// yield monotone non-increasing best values, the 5th no worse than the
// 1st — and strictly better on at least 2 of the 4 families.
TEST(EvolveEngine, SequentialSubmissionsAreMonotoneNonIncreasing) {
  int strictly_improved = 0;
  for (const std::string& family : kFamilies) {
    const Graph g = family_graph(family);
    api::Engine engine;
    const api::Problem problem = api::Problem::viewing(g);
    std::vector<double> values;
    for (int round = 0; round < 5; ++round) {
      const auto result = engine.solve(
          problem,
          evolve_spec(6, 500 + static_cast<std::uint64_t>(round), 1500, 3, 1));
      values.push_back(result.best_value);
    }
    for (std::size_t i = 1; i < values.size(); ++i) {
      EXPECT_LE(values[i], values[i - 1])
          << family << " regressed at round " << i;
    }
    EXPECT_LE(values.back(), values.front()) << family;
    if (values.back() < values.front()) ++strictly_improved;
  }
  EXPECT_GE(strictly_improved, 2)
      << "evolution failed to strictly improve on at least 2 families";
}

// Evolve mode on a cold engine degrades to a plain portfolio (no archive
// yet, all restarts cold) and still feeds the archive for next time.
TEST(EvolveEngine, ColdStartFeedsTheArchive) {
  api::Engine engine;
  const api::Problem problem = api::Problem::generated("grid2d:10,10");
  EXPECT_EQ(engine.archive_counters().elites, 0);
  engine.solve(problem, evolve_spec(3, 5, 400, 2, 1));
  const evolve::ArchiveCounters c = engine.archive_counters();
  EXPECT_GE(c.elites, 1);
  EXPECT_GE(c.admitted, 1);
  EXPECT_TRUE(engine
                  .archive_best(problem.digest(), 3, ObjectiveKind::MinMaxCut)
                  .has_value());
  // evolve_capacity = 0 disables the subsystem end to end.
  api::EngineOptions off;
  off.evolve_capacity = 0;
  api::Engine dark(off);
  dark.solve(problem, evolve_spec(3, 5, 400, 2, 1));
  EXPECT_EQ(dark.archive_counters().elites, 0);
}

}  // namespace
}  // namespace ffp
