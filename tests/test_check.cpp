#include "util/check.hpp"

#include <gtest/gtest.h>

namespace ffp {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(FFP_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsError) {
  EXPECT_THROW(FFP_CHECK(false), Error);
}

TEST(Check, MessageIncludesOperands) {
  try {
    const int x = 41;
    FFP_CHECK(x == 42, "x was ", x, " not ", 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x was 41 not 42"), std::string::npos);
    EXPECT_NE(what.find("x == 42"), std::string::npos);
  }
}

TEST(Check, MessageIncludesSourceLocation) {
  try {
    FFP_CHECK(false, "boom");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, NoMessageIsFine) {
  try {
    FFP_CHECK(false);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("FFP_CHECK failed"),
              std::string::npos);
  }
}

TEST(Check, ErrorIsRuntimeError) {
  // Callers may catch std::runtime_error or std::exception.
  EXPECT_THROW(FFP_CHECK(false), std::runtime_error);
  EXPECT_THROW(FFP_CHECK(false), std::exception);
}

TEST(Check, ConditionEvaluatedOnce) {
  int count = 0;
  auto bump = [&count] { return ++count > 0; };
  FFP_CHECK(bump());
  EXPECT_EQ(count, 1);
}

// FFP_DCHECK's contract differs per build type, and CI builds both: the
// Debug job proves it checks, the Release (NDEBUG) job proves it is
// zero-cost — the condition must never be evaluated.
TEST(Check, DcheckActiveOnlyInDebugBuilds) {
  int evaluations = 0;
  auto bump_and_fail = [&evaluations] {
    ++evaluations;
    return false;
  };
#ifdef NDEBUG
  EXPECT_NO_THROW(FFP_DCHECK(bump_and_fail(), "unused ", evaluations));
  EXPECT_EQ(evaluations, 0) << "NDEBUG FFP_DCHECK evaluated its condition";
#else
  EXPECT_THROW(FFP_DCHECK(bump_and_fail(), "fails in debug"), Error);
  EXPECT_EQ(evaluations, 1);
#endif
}

TEST(Check, DcheckPassingConditionDoesNothing) {
  EXPECT_NO_THROW(FFP_DCHECK(1 + 1 == 2));
  EXPECT_NO_THROW(FFP_DCHECK(true, "with a message ", 42));
}

}  // namespace
}  // namespace ffp
