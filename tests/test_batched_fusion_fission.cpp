// The batched parallel fusion-fission engine: determinism across thread
// counts (the engine's core contract — `threads` only decides where the
// speculative phase runs, never what it computes), conflict-free batch
// scheduling, and speculative-work accounting.
#include <cmath>

#include <gtest/gtest.h>

#include "core/batch_scheduler.hpp"
#include "core/fusion_fission.hpp"
#include "graph/generators.hpp"
#include "metaheuristics/percolation.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

struct Family {
  const char* name;
  Graph graph;
};

std::vector<Family> batched_families() {
  std::vector<Family> families;
  families.push_back({"grid", make_grid2d(40, 40)});
  families.push_back({"torus", make_torus(30, 30)});
  families.push_back({"geometric", make_random_geometric(1024, 0.11, 5)});
  families.push_back({"powerlaw", make_power_law(1024, 6.0, 2.5, 5)});
  return families;
}

FusionFissionResult run_batched(const Graph& g, int k, int threads, int batch,
                                std::int64_t steps, std::uint64_t seed = 41) {
  FusionFissionOptions opt;
  opt.seed = seed;
  opt.threads = threads;
  opt.batch = batch;
  FusionFission ff(g, k, opt);
  return ff.run(StopCondition::after_steps(steps));
}

void expect_identical(const FusionFissionResult& a,
                      const FusionFissionResult& b, const char* what) {
  ASSERT_EQ(a.best.assignment().size(), b.best.assignment().size()) << what;
  for (std::size_t v = 0; v < a.best.assignment().size(); ++v) {
    ASSERT_EQ(a.best.assignment()[v], b.best.assignment()[v])
        << what << ": vertex " << v;
  }
  EXPECT_EQ(a.best_value, b.best_value) << what;  // bitwise, not NEAR
  EXPECT_EQ(a.steps, b.steps) << what;
  EXPECT_EQ(a.fusions, b.fusions) << what;
  EXPECT_EQ(a.fissions, b.fissions) << what;
  EXPECT_EQ(a.ejections, b.ejections) << what;
  EXPECT_EQ(a.reheats, b.reheats) << what;
  EXPECT_EQ(a.batches, b.batches) << what;
  EXPECT_EQ(a.conflicts, b.conflicts) << what;
  EXPECT_EQ(a.stale_redone, b.stale_redone) << what;
}

TEST(BatchedFusionFission, ByteIdenticalAcrossThreadCountsAllFamilies) {
  // The acceptance contract: 10k steps per family, partitions byte-identical
  // at 1 vs 2 vs 8 threads (same fixed batch size).
  for (const auto& family : batched_families()) {
    SCOPED_TRACE(family.name);
    const auto t1 = run_batched(family.graph, 16, 1, 16, 10000);
    const auto t2 = run_batched(family.graph, 16, 2, 16, 10000);
    const auto t8 = run_batched(family.graph, 16, 8, 16, 10000);
    expect_identical(t1, t2, family.name);
    expect_identical(t1, t8, family.name);
    ffp::testing::expect_valid_partition(t1.best, 16);
    EXPECT_GT(t1.batches, 0);
  }
}

TEST(BatchedFusionFission, ThreadsAloneSelectsBatchedEngine) {
  // threads=1 with default batch must equal threads=8 with default batch —
  // the default batch size may never derive from the thread count.
  const Graph g = make_grid2d(24, 24);
  const auto a = run_batched(g, 8, 1, 0, 4000);
  const auto b = run_batched(g, 8, 8, 0, 4000);
  expect_identical(a, b, "default-batch");
  EXPECT_GT(a.batches, 0);
}

TEST(BatchedFusionFission, SerialModeReportsNoBatches) {
  const Graph g = make_grid2d(12, 12);
  const auto res = run_batched(g, 6, 0, 0, 2000);
  EXPECT_EQ(res.batches, 0);
  EXPECT_EQ(res.conflicts, 0);
  EXPECT_EQ(res.stale_redone, 0);
  ffp::testing::expect_valid_partition(res.best, 6);
}

TEST(BatchedFusionFission, QualityComparableToSerialSchedule) {
  // Different schedule, same search: the batched result must land in the
  // same quality regime as the serial loop, and beat the percolation
  // baseline the paper compares against (the instance and budget of the
  // serial ImprovesOverPercolation test; an 8-seed sweep on grid40x40
  // showed batched and serial means within noise of each other).
  const Graph g = with_random_weights(make_grid2d(9, 9), 1.0, 7.0, 5);
  const auto base = percolation_partition(g, 6, {});
  const double base_value =
      objective(ObjectiveKind::MinMaxCut).evaluate(base);
  const auto batched = run_batched(g, 6, 2, 16, 12000, 9);
  EXPECT_LT(batched.best_value, base_value);
}

TEST(BatchedFusionFission, StaleRecommitsAreDetected) {
  // Dense molecule + ejections reaching two hops out: some operations must
  // observe dirtied territories and re-plan. (On sparse large graphs this
  // is rare; on a small dense one it is guaranteed over enough steps.)
  const Graph g = make_random_geometric(512, 0.16, 9);
  const auto res = run_batched(g, 12, 2, 16, 8000);
  EXPECT_GT(res.conflicts, 0);
  EXPECT_GT(res.stale_redone, 0);
  ffp::testing::expect_valid_partition(res.best, 12);
}

TEST(BatchedFusionFission, RecorderSeesMonotoneImprovements) {
  const Graph g = make_grid2d(20, 20);
  FusionFissionOptions opt;
  opt.seed = 27;
  opt.threads = 2;
  FusionFission ff(g, 8, opt);
  AnytimeRecorder rec;
  const auto res = ff.run(StopCondition::after_steps(8000), &rec);
  ASSERT_GE(rec.points().size(), 1u);
  for (std::size_t i = 1; i < rec.points().size(); ++i) {
    EXPECT_LE(rec.points()[i].best_value, rec.points()[i - 1].best_value);
  }
  EXPECT_NEAR(rec.points().back().best_value, res.best_value, 1e-9);
}

// ---------------------------------------------------------------------------
// AtomBatchScheduler: the conflict-detection unit tests.
// ---------------------------------------------------------------------------

TEST(AtomBatchScheduler, OverlappingNeighborhoodsConflict) {
  // Complete graph: every atom is connected to every other, so any two
  // candidates' territories overlap — only the first claim can succeed.
  const Graph g = make_complete(12);
  std::vector<int> assign(12);
  for (int v = 0; v < 12; ++v) assign[static_cast<std::size_t>(v)] = v / 2;
  const auto p = Partition::from_assignment(g, assign, 6);

  AtomBatchScheduler sched;
  sched.begin_batch(p);
  std::vector<int> claimed;
  EXPECT_TRUE(sched.try_claim(p, 0, claimed));
  // Atom 0's territory is the whole molecule.
  EXPECT_EQ(claimed.size(), 6u);
  for (int q = 1; q < 6; ++q) {
    std::vector<int> other;
    EXPECT_FALSE(sched.try_claim(p, q, other)) << "atom " << q;
    EXPECT_TRUE(other.empty()) << "failed claim must take nothing";
  }
}

TEST(AtomBatchScheduler, DisjointNeighborhoodsCoexist) {
  // Path of 12 vertices in 6 atoms of 2: atom 0 (vertices 0-1) touches only
  // atom 1; atom 3 (vertices 6-7) touches atoms 2 and 4. Territories
  // {0,1} and {2,3,4} are disjoint, so both claims must succeed, while
  // atom 1 (territory {0,1,2}) then conflicts with both.
  const Graph g = make_path(12);
  std::vector<int> assign(12);
  for (int v = 0; v < 12; ++v) assign[static_cast<std::size_t>(v)] = v / 2;
  const auto p = Partition::from_assignment(g, assign, 6);

  AtomBatchScheduler sched;
  sched.begin_batch(p);
  std::vector<int> a, b, c;
  EXPECT_TRUE(sched.try_claim(p, 0, a));
  EXPECT_TRUE(sched.try_claim(p, 3, b));
  EXPECT_FALSE(sched.try_claim(p, 1, c));
  EXPECT_TRUE(sched.claimed(0));
  EXPECT_TRUE(sched.claimed(4));
  EXPECT_FALSE(sched.claimed(5));

  // A new batch drops every claim.
  sched.begin_batch(p);
  std::vector<int> d;
  EXPECT_TRUE(sched.try_claim(p, 1, d));
  EXPECT_EQ(d.size(), 3u);  // atoms 0, 1, 2
}

TEST(AtomBatchScheduler, ClaimListsAtomFirst) {
  const Graph g = make_path(6);
  std::vector<int> assign = {0, 0, 1, 1, 2, 2};
  const auto p = Partition::from_assignment(g, assign, 3);
  AtomBatchScheduler sched;
  sched.begin_batch(p);
  std::vector<int> claimed;
  ASSERT_TRUE(sched.try_claim(p, 1, claimed));
  ASSERT_FALSE(claimed.empty());
  EXPECT_EQ(claimed.front(), 1);
}

}  // namespace
}  // namespace ffp
