#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ffp {
namespace {

TEST(WallTimer, ElapsedIsNonNegativeAndMonotone) {
  WallTimer t;
  const double a = t.elapsed_seconds();
  const double b = t.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.reset();
  EXPECT_LT(t.elapsed_millis(), 5.0);
}

TEST(StopCondition, DefaultNeverStops) {
  StopCondition s;
  s.start();
  EXPECT_FALSE(s.done(1'000'000));
}

TEST(StopCondition, StepBudget) {
  auto s = StopCondition::after_steps(10);
  s.start();
  EXPECT_FALSE(s.done(9));
  EXPECT_TRUE(s.done(10));
  EXPECT_TRUE(s.done(11));
}

TEST(StopCondition, TimeBudgetExpires) {
  auto s = StopCondition::after_millis(20);
  s.start();
  EXPECT_FALSE(s.done(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(s.done(0));
}

TEST(StopCondition, EitherStopsOnSteps) {
  auto s = StopCondition::either(1e9, 5);
  s.start();
  EXPECT_TRUE(s.done(5));
  EXPECT_FALSE(s.done(4));
}

TEST(StopCondition, AccessorsReflectConfiguration) {
  auto s = StopCondition::either(123.0, 456);
  EXPECT_DOUBLE_EQ(s.max_millis(), 123.0);
  EXPECT_EQ(s.max_steps(), 456);
}

}  // namespace
}  // namespace ffp
