// Shared fixtures and helpers for the ffp test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "partition/partition.hpp"

namespace ffp::testing {

/// Small graph families used by the parameterized property suites.
struct GraphCase {
  std::string name;
  Graph graph;
};

inline std::vector<GraphCase> property_graphs() {
  std::vector<GraphCase> cases;
  cases.push_back({"grid6x6", make_grid2d(6, 6)});
  cases.push_back({"torus5x8", make_torus(5, 8)});
  cases.push_back({"path20", make_path(20)});
  cases.push_back({"cycle17", make_cycle(17)});
  cases.push_back({"complete9", make_complete(9)});
  cases.push_back({"barbell8", make_barbell(8, 2)});
  cases.push_back({"star16", make_star(16)});
  cases.push_back({"geo80", make_random_geometric(80, 0.22, 7)});
  cases.push_back(
      {"weighted_grid", with_random_weights(make_grid2d(7, 5), 0.5, 9.5, 3)});
  cases.push_back({"powerlaw", make_power_law(90, 4.0, 2.6, 11)});
  return cases;
}

/// Asserts structural validity: every vertex assigned to a part in range,
/// part stats consistent (via Partition::validate), and if expect_k >= 0,
/// exactly that many non-empty parts.
inline void expect_valid_partition(const Partition& p, int expect_k = -1) {
  ASSERT_NO_THROW(p.validate());
  const auto assign = p.assignment();
  for (VertexId v = 0; v < p.graph().num_vertices(); ++v) {
    ASSERT_GE(assign[static_cast<std::size_t>(v)], 0);
    ASSERT_LT(assign[static_cast<std::size_t>(v)], p.num_parts());
  }
  if (expect_k >= 0) {
    EXPECT_EQ(p.num_nonempty_parts(), expect_k);
  }
}

}  // namespace ffp::testing
