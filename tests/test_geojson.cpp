#include "atc/geojson.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ffp {
namespace {

Airspace small_airspace() {
  AirspaceOptions opt;
  opt.n_sectors = 60;
  opt.seed = 9;
  return make_airspace(opt);
}

TEST(GeoJson, WellFormedSkeleton) {
  const auto a = small_airspace();
  std::ostringstream os;
  write_geojson(a, {}, os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
  EXPECT_NE(out.find("\"FeatureCollection\""), std::string::npos);
  // Balanced braces and brackets (cheap structural check).
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

TEST(GeoJson, OnePointPerSector) {
  const auto a = small_airspace();
  std::ostringstream os;
  GeoJsonOptions opt;
  opt.include_edges = false;
  write_geojson(a, {}, os, opt);
  const std::string out = os.str();
  std::size_t count = 0, pos = 0;
  while ((pos = out.find("\"Point\"", pos)) != std::string::npos) {
    ++count;
    pos += 7;
  }
  EXPECT_EQ(count, a.sectors.size());
  EXPECT_EQ(out.find("\"LineString\""), std::string::npos);
}

TEST(GeoJson, BlocksAppearAsProperties) {
  const auto a = small_airspace();
  std::vector<int> blocks(a.sectors.size(), 0);
  blocks[0] = 7;
  std::ostringstream os;
  write_geojson(a, blocks, os);
  EXPECT_NE(os.str().find("\"block\":7"), std::string::npos);
  EXPECT_NE(os.str().find("\"crossing\":"), std::string::npos);
}

TEST(GeoJson, EdgeWeightFilter) {
  const auto a = small_airspace();
  std::ostringstream all_os, none_os;
  GeoJsonOptions all;
  write_geojson(a, {}, all_os, all);
  GeoJsonOptions none;
  none.min_edge_weight = 1e18;
  write_geojson(a, {}, none_os, none);
  EXPECT_GT(all_os.str().size(), none_os.str().size());
  EXPECT_EQ(none_os.str().find("\"LineString\""), std::string::npos);
}

TEST(GeoJson, RejectsWrongBlockCount) {
  const auto a = small_airspace();
  const std::vector<int> bad(3, 0);
  std::ostringstream os;
  EXPECT_THROW(write_geojson(a, bad, os), Error);
}

}  // namespace
}  // namespace ffp
