// Shard suite: the consistent-hash ring, the digest-keyed Router front
// end, and inter-shard elite migration.
//
// The scale-out contract under test:
//   * the ring is deterministic, balanced, and remaps ~1/N of digests
//     when a shard is added (never a full reshuffle);
//   * repeat submissions of one graph through the router land on ONE
//     shard — its result cache answers the repeats (digest affinity);
//   * a shard SIGKILLed mid-batch costs retries, not results: the
//     router's retryable errors plus the client's resubmission loop land
//     every job on the survivor, byte-identical to a fault-free run;
//   * an elite migrated between shards is admitted through the peer's
//     diversity-aware archive rules and is visible in its counters.
#include "shard/hash_ring.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "shard/migrate.hpp"
#include "shard/router.hpp"
#include "util/rng.hpp"

namespace ffp {
namespace {

using shard::HashRing;

TEST(HashRing, DeterministicAndInRange) {
  const HashRing a(4, 64);
  const HashRing b(4, 64);
  std::uint64_t state = 42;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t digest = splitmix64(state);
    const std::size_t owner = a.owner(digest);
    EXPECT_LT(owner, 4u);
    EXPECT_EQ(owner, b.owner(digest));  // same construction, same ring
    const auto pref = a.preference(digest);
    ASSERT_EQ(pref.size(), 4u);
    EXPECT_EQ(pref[0], owner);  // preference starts at the owner
    EXPECT_EQ(std::set<std::size_t>(pref.begin(), pref.end()).size(), 4u);
  }
}

TEST(HashRing, SpreadsLoadAcrossShards) {
  const HashRing ring(4, 64);
  std::vector<int> hits(4, 0);
  std::uint64_t state = 7;
  constexpr int kDigests = 4000;
  for (int i = 0; i < kDigests; ++i) {
    ++hits[ring.owner(splitmix64(state))];
  }
  for (int s = 0; s < 4; ++s) {
    // Fair share is 1000; vnode placement noise stays well inside 2x.
    EXPECT_GT(hits[s], kDigests / 10) << "shard " << s << " starved";
    EXPECT_LT(hits[s], kDigests / 2) << "shard " << s << " overloaded";
  }
}

TEST(HashRing, AddingAShardRemapsABoundedFraction) {
  const HashRing three(3, 64);
  const HashRing four(4, 64);
  std::uint64_t state = 99;
  constexpr int kDigests = 4000;
  int moved = 0;
  for (int i = 0; i < kDigests; ++i) {
    const std::uint64_t digest = splitmix64(state);
    const std::size_t before = three.owner(digest);
    const std::size_t after = four.owner(digest);
    if (before != after) {
      ++moved;
      // Every move is TO the new shard; 0..2 never trade among themselves.
      EXPECT_EQ(after, 3u);
    }
  }
  // Expected ~1/4 of keys move; a naive mod-N rehash moves ~3/4.
  EXPECT_LT(moved, kDigests / 2);
  EXPECT_GT(moved, kDigests / 20);
}

// ------------------------------------------------------------------------
// In-process fleet harness: N shard servers + one router, all pumping in
// background threads.

struct Shard {
  explicit Shard(std::size_t evolve_capacity = 8)
      : host(options(evolve_capacity)),
        server(host, server_options()),
        pump([this] { server.run(); }) {}

  ~Shard() {
    server.request_stop();
    if (pump.joinable()) pump.join();
  }

  static ServiceOptions options(std::size_t evolve_capacity) {
    ServiceOptions o;
    o.runners = 2;
    o.evolve_capacity = evolve_capacity;
    return o;
  }
  static TcpServerOptions server_options() {
    TcpServerOptions o;
    o.port = 0;
    return o;
  }

  int port() const { return server.port(); }

  ServiceHost host;
  TcpServer server;
  std::thread pump;
};

struct Fleet {
  explicit Fleet(std::size_t shards, shard::RouterOptions ropt = {}) {
    for (std::size_t s = 0; s < shards; ++s) {
      members.push_back(std::make_unique<Shard>());
      ropt.shard_ports.push_back(members.back()->port());
    }
    ropt.port = 0;
    router = std::make_unique<shard::Router>(std::move(ropt));
    pump = std::thread([this] { router->run(); });
  }

  ~Fleet() {
    router->request_stop();
    if (pump.joinable()) pump.join();
  }

  int port() const { return router->port(); }

  std::vector<std::unique_ptr<Shard>> members;
  std::unique_ptr<shard::Router> router;
  std::thread pump;
};

ServiceClientOptions fleet_client(int port) {
  ServiceClientOptions options;
  options.port = port;
  options.retry.max_attempts = 8;
  options.retry.base_ms = 5;
  options.retry.max_ms = 50;
  options.retry.seed = 23;
  options.io_timeout_ms = 20000;
  return options;
}

std::string ring_submit(const std::string& id, int n, int seed) {
  std::string edges = "[";
  for (int v = 0; v < n; ++v) {
    if (v > 0) edges += ",";
    edges += "[" + std::to_string(v) + "," + std::to_string((v + 1) % n) + "]";
  }
  edges += "]";
  return "{\"op\":\"submit\",\"id\":\"" + id + "\",\"graph\":{\"n\":" +
         std::to_string(n) + ",\"edges\":" + edges +
         "},\"k\":2,\"steps\":400,\"seed\":" + std::to_string(seed) + "}";
}

std::map<std::string, std::pair<std::vector<int>, double>> outcomes(
    const std::vector<ClientResult>& results, bool must_succeed) {
  std::map<std::string, std::pair<std::vector<int>, double>> out;
  for (const ClientResult& r : results) {
    if (must_succeed) {
      EXPECT_TRUE(r.ok) << r.id << " failed [" << err_name(r.code)
                        << "]: " << r.error;
    }
    if (!r.ok) continue;
    const JsonValue event = JsonValue::parse(r.result_line);
    std::vector<int> parts;
    for (const auto& p : event.find("partition")->as_array()) {
      parts.push_back(static_cast<int>(p.as_int()));
    }
    out[r.id] = {std::move(parts), event.find("value")->as_number()};
  }
  return out;
}

TEST(Router, RepeatSubmissionsStickToOneShardAndHitItsCache) {
  Fleet fleet(2);
  ServiceClient client(fleet_client(fleet.port()));

  // Same graph + spec under three ids, submitted ONE AT A TIME (so each
  // repeat finds the previous result already cached): one solve, two
  // cache hits — all on the SAME shard, or affinity is broken.
  std::map<std::string, std::pair<std::vector<int>, double>> results;
  for (int i = 0; i < 3; ++i) {
    const std::string id = "a" + std::to_string(i);
    const auto one =
        outcomes(client.run({ClientJob{id, ring_submit(id, 12, 5)}}), true);
    results.insert(one.begin(), one.end());
  }
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results.at("a0"), results.at("a1"));
  EXPECT_EQ(results.at("a0"), results.at("a2"));

  const auto c0 = fleet.members[0]->host.engine().cache_counters();
  const auto c1 = fleet.members[1]->host.engine().cache_counters();
  EXPECT_EQ(c0.hits + c1.hits, 2) << "expected exactly two cache hits";
  EXPECT_TRUE(c0.hits == 0 || c1.hits == 0)
      << "one graph spread across both shards: affinity broken "
      << "(hits " << c0.hits << " + " << c1.hits << ")";
  // Different graphs DO spread (eventually): not asserted here — vnode
  // placement for two specific digests may legitimately collide.
}

TEST(Router, StatusOfUnroutedJobIsUnknownAndShutdownIsGated) {
  Fleet fleet(2);
  FdHandle conn = tcp_connect(fleet.port());
  LineReader reader(conn);
  reader.set_timeout_ms(10000);
  std::string line;

  write_line(conn, R"({"op":"status","id":"ghost"})");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(JsonValue::parse(line).find("code")->as_string(), "unknown_job")
      << line;

  write_line(conn, R"({"op":"shutdown"})");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(JsonValue::parse(line).find("code")->as_string(), "forbidden")
      << line;

  // migrate_elite is shard-to-shard gossip; the front door refuses it.
  write_line(conn,
             R"({"op":"migrate_elite","digest":"1f","k":2,"objective":"cut",)"
             R"("value":1.0,"assignment":[0,1]})");
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(JsonValue::parse(line).find("event")->as_string(), "error")
      << line;

  // ... and the connection survived all three refusals.
  write_line(conn, ring_submit("ok", 12, 5));
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(JsonValue::parse(line).find("event")->as_string(), "ack") << line;
}

// ------------------------------------------------------------------------
// Elite migration.

TEST(Migration, ShipsBestEliteAndPeerAdmitsItOnce) {
  Shard sender;
  Shard receiver;

  // Seed the sender's archive directly (what a finished evolve job does).
  const std::uint64_t digest = 0xfeedc0de12345678ull;
  const std::vector<int> parts = {0, 0, 1, 1, 0, 1};
  ASSERT_TRUE(sender.host.engine().archive_admit(
      digest, 2, ObjectiveKind::Cut, parts, 4.0));

  shard::MigrateOptions mopt;
  mopt.peer_ports = {receiver.port()};
  mopt.period_ms = 60000;  // never ticks on its own; we drive it
  shard::EliteMigrator migrator(sender.host.engine(),
                                sender.host.serve_stats(), mopt);

  // First sweep pushes, second is quiet (no improvement since).
  EXPECT_EQ(migrator.migrate_once(), 1u);
  EXPECT_EQ(migrator.migrate_once(), 0u);
  EXPECT_EQ(sender.host.serve_stats().snapshot().migrations_sent, 1);
  EXPECT_EQ(receiver.host.serve_stats().snapshot().migrations_received, 1);

  // The peer's archive now exports the foreign elite, same bytes.
  const auto exports = receiver.host.engine().archive_exports();
  ASSERT_EQ(exports.size(), 1u);
  EXPECT_EQ(exports[0].first.digest, digest);
  EXPECT_EQ(exports[0].first.k, 2);
  EXPECT_EQ(exports[0].second.value, 4.0);
  EXPECT_EQ(*exports[0].second.assignment, parts);

  // An improvement re-triggers the push; a regression never would.
  const std::vector<int> better = {0, 1, 1, 1, 0, 0};
  ASSERT_TRUE(sender.host.engine().archive_admit(digest, 2,
                                                 ObjectiveKind::Cut, better,
                                                 3.0));
  EXPECT_EQ(migrator.migrate_once(), 1u);
  EXPECT_EQ(receiver.host.serve_stats().snapshot().migrations_received, 2);
}

TEST(Migration, DeadPeerIsSkippedWithoutStallingTheSweep) {
  Shard sender;
  int dead_port = 0;
  {
    // Grab an ephemeral port and close it: nothing listens there.
    const FdHandle probe = tcp_listen(0, &dead_port);
  }
  ASSERT_TRUE(sender.host.engine().archive_admit(
      0xabcull, 2, ObjectiveKind::Cut, std::vector<int>{0, 1, 0, 1}, 2.0));

  shard::MigrateOptions mopt;
  mopt.peer_ports = {dead_port};
  mopt.period_ms = 60000;
  mopt.io_timeout_ms = 500;
  shard::EliteMigrator migrator(sender.host.engine(),
                                sender.host.serve_stats(), mopt);
  EXPECT_EQ(migrator.migrate_once(), 0u);
  EXPECT_EQ(sender.host.serve_stats().snapshot().migrations_sent, 0);
  // The elite was NOT marked sent: a revived peer gets it next sweep.
}

// ------------------------------------------------------------------------
// Failover drill: one shard SIGKILLed mid-batch, every job still lands.

struct ShardProc {
  pid_t pid = -1;
  int port = 0;
  int err_fd = -1;

  ~ShardProc() {
    if (err_fd >= 0) ::close(err_fd);
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }

  void sigkill() {
    ASSERT_GT(pid, 0);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    pid = -1;
  }
};

void spawn_shard(ShardProc& proc) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(fds[1], 2);
    ::close(fds[0]);
    ::close(fds[1]);
    ::unsetenv("FFP_FAULT");
    ::execl("./ffp_serve", "ffp_serve", "--listen", "0", "--runners", "2",
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed: tests must run from the build dir
  }
  ::close(fds[1]);
  proc.pid = pid;
  proc.err_fd = fds[0];
  std::string text;
  char c = 0;
  while (text.find("listening on 127.0.0.1:") == std::string::npos ||
         text.find('\n', text.find("listening on")) == std::string::npos) {
    const ssize_t n = ::read(proc.err_fd, &c, 1);
    ASSERT_GT(n, 0) << "ffp_serve died before listening; stderr:\n" << text;
    text.push_back(c);
  }
  const std::size_t colon = text.find("127.0.0.1:");
  proc.port = std::atoi(text.c_str() + colon + 10);
  ASSERT_GT(proc.port, 0) << text;
}

std::vector<ClientJob> drill_jobs() {
  std::vector<ClientJob> jobs;
  for (int i = 0; i < 6; ++i) {
    const std::string id = "f" + std::to_string(i);
    // Distinct ring sizes: distinct digests, so both shards get traffic.
    jobs.push_back({id, ring_submit(id, 10 + i, 31 + i)});
  }
  return jobs;
}

/// The fault-free reference: the same batch against one clean in-process
/// shard (no router) — values and partitions are transport-independent.
const std::map<std::string, std::pair<std::vector<int>, double>>&
drill_reference() {
  static const auto reference = [] {
    Shard solo;
    ServiceClient client(fleet_client(solo.port()));
    auto out = outcomes(client.run(drill_jobs()), true);
    EXPECT_EQ(out.size(), 6u);
    return out;
  }();
  return reference;
}

TEST(RouterFailover, SigkilledShardMidBatchCostsRetriesNotResults) {
  const auto& reference = drill_reference();

  ShardProc a;
  ShardProc b;
  spawn_shard(a);
  spawn_shard(b);

  shard::RouterOptions ropt;
  ropt.shard_ports = {a.port, b.port};
  ropt.down_cooldown_ms = 60000;  // once dead, stay out of this drill
  shard::Router router(std::move(ropt));
  std::thread pump([&router] { router.run(); });

  std::vector<ClientResult> results;
  std::thread batch([&] {
    ServiceClient client(fleet_client(router.port()));
    results = client.run(drill_jobs());
  });
  // SIGKILL one shard while the batch is (very likely) mid-flight. The
  // timing can land anywhere; the contract is timing-independent.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  a.sigkill();
  batch.join();

  const auto survived = outcomes(results, true);
  EXPECT_EQ(survived, reference)
      << "failover changed bytes: determinism contract broken";

  router.request_stop();
  pump.join();
}

}  // namespace
}  // namespace ffp
