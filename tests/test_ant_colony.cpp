#include "metaheuristics/ant_colony.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "metaheuristics/percolation.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

TEST(AntColony, ImprovesOrMatchesInitialPartition) {
  const auto g = with_random_weights(make_grid2d(8, 8), 1.0, 6.0, 3);
  const auto init = percolation_partition(g, 4, {});
  AntColonyOptions opt;
  opt.objective = ObjectiveKind::MinMaxCut;
  opt.seed = 5;
  AntColony aco(g, 4, opt);
  const auto res = aco.run(init, StopCondition::after_steps(200));
  const double init_value = objective(opt.objective).evaluate(init);
  EXPECT_LE(res.best_value, init_value + 1e-9);
  ffp::testing::expect_valid_partition(res.best);
}

TEST(AntColony, KeepsKColoniesAlive) {
  const auto g = make_torus(7, 7);
  const auto init = percolation_partition(g, 5, {});
  AntColonyOptions opt;
  opt.seed = 7;
  AntColony aco(g, 5, opt);
  const auto res = aco.run(init, StopCondition::after_steps(120));
  EXPECT_EQ(res.best.num_nonempty_parts(), 5);
}

TEST(AntColony, RespectsIterationBudget) {
  const auto g = make_grid2d(6, 6);
  const auto init = percolation_partition(g, 3, {});
  AntColonyOptions opt;
  AntColony aco(g, 3, opt);
  const auto res = aco.run(init, StopCondition::after_steps(25));
  EXPECT_LE(res.iterations, 26);
}

TEST(AntColony, DeterministicForSeed) {
  const auto g = make_grid2d(7, 7);
  const auto init = percolation_partition(g, 4, {});
  AntColonyOptions opt;
  opt.seed = 11;
  AntColony a(g, 4, opt), b(g, 4, opt);
  const auto ra = a.run(init, StopCondition::after_steps(60));
  const auto rb = b.run(init, StopCondition::after_steps(60));
  EXPECT_DOUBLE_EQ(ra.best_value, rb.best_value);
}

TEST(AntColony, BestValueMatchesBestPartition) {
  const auto g = make_grid2d(6, 6);
  const auto init = percolation_partition(g, 3, {});
  AntColonyOptions opt;
  opt.objective = ObjectiveKind::Cut;
  opt.seed = 13;
  AntColony aco(g, 3, opt);
  const auto res = aco.run(init, StopCondition::after_steps(80));
  EXPECT_NEAR(objective(ObjectiveKind::Cut).evaluate(res.best),
              res.best_value, 1e-9);
}

TEST(AntColony, RecorderCapturesImprovements) {
  const auto g = with_random_weights(make_grid2d(7, 7), 1.0, 5.0, 15);
  const auto init = percolation_partition(g, 4, {});
  AntColonyOptions opt;
  opt.seed = 17;
  AntColony aco(g, 4, opt);
  AnytimeRecorder rec;
  rec.start();
  aco.run(init, StopCondition::after_steps(150), &rec);
  ASSERT_GE(rec.points().size(), 1u);
  for (std::size_t i = 1; i < rec.points().size(); ++i) {
    EXPECT_LE(rec.points()[i].best_value, rec.points()[i - 1].best_value);
  }
}

TEST(AntColony, WorksOnDifferentObjectives) {
  const auto g = make_grid2d(6, 6);
  const auto init = percolation_partition(g, 3, {});
  for (auto kind : {ObjectiveKind::Cut, ObjectiveKind::NormalizedCut,
                    ObjectiveKind::MinMaxCut}) {
    AntColonyOptions opt;
    opt.objective = kind;
    opt.seed = 19;
    AntColony aco(g, 3, opt);
    const auto res = aco.run(init, StopCondition::after_steps(40));
    EXPECT_TRUE(std::isfinite(res.best_value)) << objective_name(kind);
  }
}

TEST(AntColony, RejectsBadConfiguration) {
  const auto g = make_grid2d(4, 4);
  AntColonyOptions opt;
  EXPECT_THROW(AntColony(g, 1, opt), Error);
  opt.evaporation = 1.5;
  EXPECT_THROW(AntColony(g, 4, opt), Error);
  opt.evaporation = 0.1;
  opt.ants_per_colony = 0;
  EXPECT_THROW(AntColony(g, 4, opt), Error);
}

TEST(AntColony, RejectsForeignInitialPartition) {
  const auto g = make_grid2d(4, 4);
  const auto other = make_grid2d(4, 4);
  AntColonyOptions opt;
  AntColony aco(g, 2, opt);
  const Partition foreign(other, 2);
  EXPECT_THROW(aco.run(foreign, StopCondition::after_steps(5)), Error);
}

}  // namespace
}  // namespace ffp
