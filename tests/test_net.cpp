// Transport-layer tests: framing, EOF and error semantics, and the
// failure-hardening deadline layer (read/write timeouts, EINTR resilience,
// shutdown-driven unblocking) over real loopback sockets.
#include "service/net.hpp"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>

#include <atomic>
#include <string>
#include <thread>

#include "service/errors.hpp"

namespace ffp {
namespace {

/// A connected loopback pair: `client` dialed `server` via a throwaway
/// ephemeral listener.
struct SocketPair {
  SocketPair() {
    int port = 0;
    FdHandle listener = tcp_listen(0, &port);
    client = tcp_connect(port);
    server = FdHandle(tcp_accept(listener));
  }
  FdHandle client;
  FdHandle server;
};

TEST(Net, LineRoundTripBothDirections) {
  SocketPair pair;
  write_line(pair.client, R"({"op":"status","id":"a"})");
  write_line(pair.client, "second");
  LineReader server_reader(pair.server);
  std::string line;
  ASSERT_TRUE(server_reader.next(line));
  EXPECT_EQ(line, R"({"op":"status","id":"a"})");
  ASSERT_TRUE(server_reader.next(line));
  EXPECT_EQ(line, "second");

  write_line(pair.server, "reply");
  LineReader client_reader(pair.client);
  ASSERT_TRUE(client_reader.next(line));
  EXPECT_EQ(line, "reply");
}

TEST(Net, StripsCarriageReturns) {
  SocketPair pair;
  const std::string framed = "crlf line\r\n";
  ASSERT_EQ(::send(pair.client.get(), framed.data(), framed.size(), 0),
            static_cast<ssize_t>(framed.size()));
  LineReader reader(pair.server);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(line, "crlf line");
}

TEST(Net, PeerClosedMidLineDeliversPartialThenEof) {
  SocketPair pair;
  const std::string partial = "unterminated";
  ASSERT_EQ(::send(pair.client.get(), partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));
  pair.client.reset();  // close without ever sending '\n'
  LineReader reader(pair.server);
  std::string line;
  ASSERT_TRUE(reader.next(line));  // the final unterminated line counts
  EXPECT_EQ(line, "unterminated");
  EXPECT_FALSE(reader.next(line));  // then orderly EOF
}

TEST(Net, RejectsOversizedLines) {
  SocketPair pair;
  const std::string blob(64, 'x');  // no newline anywhere
  ASSERT_EQ(::send(pair.client.get(), blob.data(), blob.size(), 0),
            static_cast<ssize_t>(blob.size()));
  LineReader reader(pair.server);
  std::string line;
  EXPECT_THROW(reader.next(line, 16), Error);
}

TEST(Net, ReadTimeoutThrowsRetryableTimeout) {
  SocketPair pair;
  LineReader reader(pair.server);
  reader.set_timeout_ms(50);
  std::string line;
  try {
    reader.next(line);
    FAIL() << "expected a timeout";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ErrCode::Timeout);
    EXPECT_TRUE(e.retryable());
  }
}

TEST(Net, ReadDeadlineCoversTheWholeLineNotEachByte) {
  SocketPair pair;
  // A drip-feeding peer: bytes keep arriving but the line never completes
  // — the per-next() deadline must still fire.
  const std::string drip = "ab";
  ASSERT_EQ(::send(pair.client.get(), drip.data(), drip.size(), 0),
            static_cast<ssize_t>(drip.size()));
  LineReader reader(pair.server);
  reader.set_timeout_ms(80);
  std::string line;
  EXPECT_THROW(reader.next(line), ServiceError);
}

TEST(Net, WriteTimeoutWhenPeerStopsReading) {
  SocketPair pair;
  // Shrink both socket buffers so a multi-megabyte line cannot fit
  // in-flight, then never read at the peer: the bounded write must give
  // up instead of wedging forever.
  const int small = 4096;
  ::setsockopt(pair.client.get(), SOL_SOCKET, SO_SNDBUF, &small,
               sizeof(small));
  ::setsockopt(pair.server.get(), SOL_SOCKET, SO_RCVBUF, &small,
               sizeof(small));
  const std::string huge(32u << 20, 'x');
  try {
    write_line(pair.client, huge, 200);
    FAIL() << "expected a send timeout";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ErrCode::Timeout);
    EXPECT_TRUE(e.retryable());
  }
}

TEST(Net, WriteToClosedPeerThrowsConnLost) {
  SocketPair pair;
  pair.server.reset();  // peer is gone
  const std::string chunk(1u << 16, 'x');
  // The first write(s) may land in the local buffer; the RST turns a
  // later one into EPIPE/ECONNRESET — mapped to the retryable ConnLost.
  bool threw = false;
  for (int i = 0; i < 256 && !threw; ++i) {
    try {
      write_line(pair.client, chunk);
    } catch (const ServiceError& e) {
      EXPECT_EQ(e.code(), ErrCode::ConnLost);
      EXPECT_TRUE(e.retryable());
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
}

extern "C" void net_test_noop_handler(int) {}

TEST(Net, EintrDoesNotAbortOrExtendAread) {
  // A no-op handler WITHOUT SA_RESTART makes blocking syscalls return
  // EINTR — the read loop must resume and still deliver the line.
  struct sigaction sa {};
  struct sigaction old {};
  sa.sa_handler = net_test_noop_handler;
  sa.sa_flags = 0;
  sigemptyset(&sa.sa_mask);
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair pair;
  std::atomic<bool> got{false};
  std::string received;
  std::thread reader_thread([&] {
    LineReader reader(pair.server);
    reader.set_timeout_ms(5000);  // exercise the poll path too
    std::string line;
    if (reader.next(line)) {
      received = line;
      got.store(true);
    }
  });
  const pthread_t handle = reader_thread.native_handle();
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pthread_kill(handle, SIGUSR1);
  }
  write_line(pair.client, "survived the signals");
  reader_thread.join();
  EXPECT_TRUE(got.load());
  EXPECT_EQ(received, "survived the signals");
  sigaction(SIGUSR1, &old, nullptr);
}

TEST(Net, ShutdownBothUnblocksABlockedReader) {
  SocketPair pair;
  std::atomic<bool> saw_eof{false};
  std::thread reader_thread([&] {
    LineReader reader(pair.server);
    std::string line;
    // No timeout: only the shutdown can end this read.
    saw_eof.store(!reader.next(line));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  shutdown_both(pair.server);
  reader_thread.join();
  EXPECT_TRUE(saw_eof.load());
}

}  // namespace
}  // namespace ffp
