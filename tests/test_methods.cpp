#include "benchlib/methods.hpp"

#include <gtest/gtest.h>

#include <set>

#include "atc/core_area.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

/// Small core-area-shaped graph so every method runs in milliseconds.
const Graph& small_atc() {
  static const Graph g = [] {
    CoreAreaOptions opt;
    opt.n_sectors = 140;
    opt.n_edges = 520;
    opt.seed = 11;
    return make_core_area_graph(opt).graph;
  }();
  return g;
}

TEST(Methods, RegistryHasAll17PaperRows) {
  const auto methods = table1_methods();
  ASSERT_EQ(methods.size(), 17u);
  const std::vector<std::string> expected = {
      "Linear (Bi)",
      "Linear (Bi, KL)",
      "Linear (Oct, KL)",
      "Spectral (Lanc, Bi)",
      "Spectral (Lanc, Bi, KL)",
      "Spectral (Lanc, Oct)",
      "Spectral (Lanc, Oct, KL)",
      "Spectral (RQI, Bi)",
      "Spectral (RQI, Bi, KL)",
      "Spectral (RQI, Oct)",
      "Spectral (RQI, Oct, KL)",
      "Multilevel (Bi)",
      "Multilevel (Oct)",
      "Percolation",
      "Simulated annealing",
      "Ant colony",
      "Fusion Fission",
  };
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(methods[i].name, expected[i]);
  }
}

TEST(Methods, MetaheuristicFlagsMatchPaper) {
  const auto methods = table1_methods();
  std::set<std::string> meta;
  for (const auto& m : methods) {
    if (m.is_metaheuristic) meta.insert(m.name);
  }
  EXPECT_EQ(meta, (std::set<std::string>{"Simulated annealing", "Ant colony",
                                         "Fusion Fission"}));
}

TEST(Methods, LookupByName) {
  const auto methods = table1_methods();
  EXPECT_EQ(method_by_name(methods, "Fusion Fission").name, "Fusion Fission");
  EXPECT_THROW(method_by_name(methods, "Does Not Exist"), Error);
}

TEST(Methods, EveryRowProducesValidKPartition) {
  const auto methods = table1_methods();
  const Graph& g = small_atc();
  for (const auto& m : methods) {
    MethodContext ctx;
    ctx.k = 8;
    ctx.objective = ObjectiveKind::MinMaxCut;
    ctx.budget_ms = 150.0;
    ctx.seed = 3;
    const auto p = m.run(g, ctx);
    SCOPED_TRACE(m.name);
    ffp::testing::expect_valid_partition(p, 8);
  }
}

TEST(Methods, DeterministicRowsReproduce) {
  const auto methods = table1_methods();
  const Graph& g = small_atc();
  for (const auto& m : methods) {
    if (m.is_metaheuristic) continue;  // budgeted rows depend on wall clock
    MethodContext ctx;
    ctx.k = 8;
    ctx.seed = 5;
    const auto a = m.run(g, ctx);
    const auto b = m.run(g, ctx);
    SCOPED_TRACE(m.name);
    EXPECT_TRUE(std::equal(a.assignment().begin(), a.assignment().end(),
                           b.assignment().begin()));
  }
}

TEST(Methods, MetaheuristicsRespectObjectiveChoice) {
  const auto methods = table1_methods();
  const Graph& g = small_atc();
  for (const char* name :
       {"Simulated annealing", "Ant colony", "Fusion Fission"}) {
    const auto& m = method_by_name(methods, name);
    MethodContext ctx;
    ctx.k = 8;
    ctx.budget_ms = 200.0;
    ctx.seed = 7;
    ctx.objective = ObjectiveKind::Cut;
    const auto cut_run = m.run(g, ctx);
    ctx.objective = ObjectiveKind::MinMaxCut;
    const auto mcut_run = m.run(g, ctx);
    SCOPED_TRACE(name);
    // Each optimizes its own criterion at least as well as the other's
    // output scores under that criterion (weak but meaningful check).
    const double cut_of_cutrun =
        objective(ObjectiveKind::Cut).evaluate(cut_run);
    const double cut_of_mcutrun =
        objective(ObjectiveKind::Cut).evaluate(mcut_run);
    EXPECT_LE(cut_of_cutrun, cut_of_mcutrun * 1.6 + 1e-9);
  }
}

TEST(Methods, RecorderIsFedByMetaheuristics) {
  const auto methods = table1_methods();
  const Graph& g = small_atc();
  const auto& ff = method_by_name(methods, "Fusion Fission");
  AnytimeRecorder rec;
  MethodContext ctx;
  ctx.k = 8;
  ctx.budget_ms = 200.0;
  ctx.recorder = &rec;
  ff.run(g, ctx);
  EXPECT_GE(rec.points().size(), 1u);
}

}  // namespace
}  // namespace ffp
