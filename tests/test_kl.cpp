#include "refine/kl_bisection.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace ffp {
namespace {

TEST(Kl, SwapsPreserveSideSizes) {
  const auto g = make_grid2d(6, 6);
  Rng rng(31);
  std::vector<int> assign(36);
  for (int i = 0; i < 36; ++i) assign[static_cast<std::size_t>(i)] = i < 18 ? 0 : 1;
  rng.shuffle(assign);
  auto p = Partition::from_assignment(g, assign, 2);
  const int size0 = p.part_size(0);
  kl_refine_bisection(p, 0, 1);
  EXPECT_EQ(p.part_size(0), size0);
  ffp::testing::expect_valid_partition(p, 2);
}

TEST(Kl, ImprovesInterleavedGrid) {
  const auto g = make_grid2d(8, 8);
  std::vector<int> assign(64);
  for (int i = 0; i < 64; ++i) assign[static_cast<std::size_t>(i)] = i % 2;
  auto p = Partition::from_assignment(g, assign, 2);
  const auto res = kl_refine_bisection(p, 0, 1);
  EXPECT_LT(res.final_cut, res.initial_cut);
}

TEST(Kl, NeverWorsens) {
  Rng rng(37);
  for (const auto& tc : testing::property_graphs()) {
    const VertexId n = tc.graph.num_vertices();
    std::vector<int> assign(static_cast<std::size_t>(n));
    for (VertexId i = 0; i < n; ++i) {
      assign[static_cast<std::size_t>(i)] = i < n / 2 ? 0 : 1;
    }
    rng.shuffle(assign);
    auto p = Partition::from_assignment(tc.graph, assign, 2);
    const auto res = kl_refine_bisection(p, 0, 1);
    EXPECT_LE(res.final_cut, res.initial_cut + 1e-9) << tc.name;
  }
}

TEST(Kl, RecoverBarbellSplit) {
  const auto g = make_barbell(6, 0);
  // Half of each clique on the wrong side.
  std::vector<int> assign(12);
  for (int i = 0; i < 12; ++i) assign[static_cast<std::size_t>(i)] = (i / 3) % 2;
  auto p = Partition::from_assignment(g, assign, 2);
  KlOptions opt;
  opt.max_passes = 20;
  const auto res = kl_refine_bisection(p, 0, 1, opt);
  EXPECT_LE(res.final_cut, 1.0);
}

TEST(Kl, CandidateWindowStillImproves) {
  const auto g = make_grid2d(10, 10);
  std::vector<int> assign(100);
  for (int i = 0; i < 100; ++i) assign[static_cast<std::size_t>(i)] = i % 2;
  auto p = Partition::from_assignment(g, assign, 2);
  KlOptions opt;
  opt.candidate_window = 4;  // tiny window
  const auto res = kl_refine_bisection(p, 0, 1, opt);
  EXPECT_LT(res.final_cut, res.initial_cut);
}

TEST(Kl, KwayRefinementImprovesRandomAssignment) {
  const auto g = with_random_weights(make_grid2d(8, 8), 1.0, 4.0, 41);
  Rng rng(43);
  std::vector<int> assign(64);
  for (auto& a : assign) a = static_cast<int>(rng.below(4));
  const auto before = Partition::from_assignment(g, assign, 4).edge_cut();
  const double gain = kl_refine_kway(g, assign, 4, 1.3, 45);
  const auto after = Partition::from_assignment(g, assign, 4).edge_cut();
  EXPECT_NEAR(before - after, gain, 1e-9);
  EXPECT_LE(after, before + 1e-9);
}

TEST(Kl, KwayRejectsBadK) {
  const auto g = make_path(4);
  std::vector<int> assign = {0, 0, 0, 0};
  EXPECT_THROW(kl_refine_kway(g, assign, 1, 1.1, 1), Error);
}

TEST(Kl, ReportsSwapCount) {
  const auto g = make_grid2d(6, 6);
  std::vector<int> assign(36);
  for (int i = 0; i < 36; ++i) assign[static_cast<std::size_t>(i)] = i % 2;
  auto p = Partition::from_assignment(g, assign, 2);
  const auto res = kl_refine_bisection(p, 0, 1);
  EXPECT_GT(res.swaps, 0);
  EXPECT_GT(res.passes, 0);
}

}  // namespace
}  // namespace ffp
