#include "refine/kway_fm.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/balance.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

Partition random_partition(const Graph& g, int k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> assign(static_cast<std::size_t>(g.num_vertices()));
  for (auto& a : assign) a = static_cast<int>(rng.below(k));
  return Partition::from_assignment(g, assign, k);
}

TEST(KwayFm, ImprovesCutOnGrid) {
  const auto g = make_grid2d(10, 10);
  auto p = random_partition(g, 5, 3);
  Rng rng(4);
  const auto res = kway_fm_refine(p, objective(ObjectiveKind::Cut), {}, rng);
  EXPECT_LT(res.final_objective, res.initial_objective);
  ffp::testing::expect_valid_partition(p);
}

TEST(KwayFm, NeverWorsensAnyObjective) {
  for (auto kind : {ObjectiveKind::Cut, ObjectiveKind::NormalizedCut,
                    ObjectiveKind::MinMaxCut}) {
    const auto g = make_torus(8, 8);
    auto p = random_partition(g, 4, 7);
    Rng rng(8);
    KwayFmOptions opt;
    opt.enforce_balance = false;
    const auto res = kway_fm_refine(p, objective(kind), opt, rng);
    EXPECT_LE(res.final_objective, res.initial_objective + 1e-9)
        << objective_name(kind);
  }
}

TEST(KwayFm, RespectsBalanceWhenAsked) {
  const auto g = make_grid2d(9, 9);
  auto p = random_partition(g, 3, 11);
  Rng rng(12);
  KwayFmOptions opt;
  opt.max_imbalance = 1.15;
  opt.enforce_balance = true;
  kway_fm_refine(p, objective(ObjectiveKind::Cut), opt, rng);
  EXPECT_LE(imbalance(p, 3), 1.20);
}

TEST(KwayFm, NeverEmptiesAPart) {
  const auto g = make_complete(12);
  auto p = random_partition(g, 4, 13);
  Rng rng(14);
  KwayFmOptions opt;
  opt.enforce_balance = false;
  opt.max_passes = 30;
  kway_fm_refine(p, objective(ObjectiveKind::Cut), opt, rng);
  EXPECT_EQ(p.num_nonempty_parts(), 4);
}

TEST(KwayFm, StableOnOptimalPartition) {
  const auto g = make_path(12);
  auto p = Partition::from_assignment(
      g, std::vector<int>{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2});
  Rng rng(15);
  const auto res = kway_fm_refine(p, objective(ObjectiveKind::Cut), {}, rng);
  EXPECT_DOUBLE_EQ(res.final_objective, res.initial_objective);
  EXPECT_EQ(res.moves, 0);
}

TEST(KwayFm, McutObjectiveDrivesRatioImprovement) {
  const auto g = with_random_weights(make_grid2d(8, 8), 1.0, 6.0, 16);
  auto p = random_partition(g, 4, 17);
  Rng rng(18);
  KwayFmOptions opt;
  opt.enforce_balance = false;
  opt.max_passes = 20;
  const auto res =
      kway_fm_refine(p, objective(ObjectiveKind::MinMaxCut), opt, rng);
  EXPECT_LT(res.final_objective, res.initial_objective);
}

TEST(KwayFm, ReportsMoveCount) {
  const auto g = make_grid2d(8, 8);
  auto p = random_partition(g, 4, 19);
  Rng rng(20);
  const auto res = kway_fm_refine(p, objective(ObjectiveKind::Cut), {}, rng);
  EXPECT_GT(res.moves, 0);
  EXPECT_GT(res.passes, 0);
}

}  // namespace
}  // namespace ffp
