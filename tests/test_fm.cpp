#include "refine/fm_bisection.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/balance.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace ffp {
namespace {

TEST(Fm, FindsBarbellBridgeFromBadStart) {
  const auto g = make_barbell(8, 0);
  // Interleaved assignment: maximally bad.
  std::vector<int> assign(16);
  for (int i = 0; i < 16; ++i) assign[static_cast<std::size_t>(i)] = i % 2;
  const auto res = fm_refine_bisection(g, assign, {});
  EXPECT_LT(res.final_cut, res.initial_cut);
  EXPECT_LE(res.final_cut, 1.0);  // the single clique-joining edge
}

TEST(Fm, NeverWorsensTheCut) {
  Rng rng(21);
  for (const auto& tc : testing::property_graphs()) {
    std::vector<int> assign(static_cast<std::size_t>(tc.graph.num_vertices()));
    for (auto& a : assign) a = static_cast<int>(rng.below(2));
    if (std::count(assign.begin(), assign.end(), 0) == 0) assign[0] = 0;
    if (std::count(assign.begin(), assign.end(), 1) == 0) assign[0] = 1;
    const auto res = fm_refine_bisection(tc.graph, assign, {});
    EXPECT_LE(res.final_cut, res.initial_cut + 1e-9) << tc.name;
  }
}

TEST(Fm, RespectsBalanceCap) {
  const auto g = make_grid2d(8, 8);
  std::vector<int> assign(64);
  for (int i = 0; i < 64; ++i) assign[static_cast<std::size_t>(i)] = i < 32 ? 0 : 1;
  FmOptions opt;
  opt.max_imbalance = 1.10;
  fm_refine_bisection(g, assign, opt);
  const auto p = Partition::from_assignment(g, assign, 2);
  EXPECT_LE(imbalance(p, 2), 1.12);
}

TEST(Fm, GridBisectionReachesStraightCut) {
  const auto g = make_grid2d(8, 8);
  // Checkerboard start: every edge cut.
  std::vector<int> assign(64);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      assign[static_cast<std::size_t>(r * 8 + c)] = (r + c) % 2;
    }
  }
  FmOptions opt;
  opt.max_passes = 40;
  const auto res = fm_refine_bisection(g, assign, opt);
  EXPECT_LT(res.final_cut, res.initial_cut / 2.0);
}

TEST(Fm, OperatesOnChosenSidesOnly) {
  const auto g = make_path(9);
  auto p = Partition::from_assignment(
      g, std::vector<int>{0, 0, 0, 1, 1, 1, 2, 2, 2});
  fm_refine_bisection(p, 0, 1, {});
  // Part 2 untouched.
  for (VertexId v = 6; v < 9; ++v) {
    EXPECT_EQ(p.part_of(v), 2);
  }
  ffp::testing::expect_valid_partition(p, 3);
}

TEST(Fm, AlreadyOptimalIsStable) {
  const auto g = make_grid2d(4, 8);
  std::vector<int> assign(32);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 8; ++c) {
      assign[static_cast<std::size_t>(r * 8 + c)] = c < 4 ? 0 : 1;
    }
  }
  const auto res = fm_refine_bisection(g, assign, {});
  EXPECT_DOUBLE_EQ(res.final_cut, 4.0);
  EXPECT_LE(res.passes, 2);
}

TEST(Fm, NeverEmptiesASide) {
  const auto g = make_star(6);
  std::vector<int> assign(7, 0);
  assign[3] = 1;  // one leaf alone — gain says move it, size guard says no
  fm_refine_bisection(g, assign, {});
  EXPECT_EQ(std::count(assign.begin(), assign.end(), 1), 1);
}

TEST(Fm, TinySidesAreHandled) {
  const auto g = make_path(2);
  std::vector<int> assign = {0, 1};
  const auto res = fm_refine_bisection(g, assign, {});
  EXPECT_DOUBLE_EQ(res.final_cut, 1.0);
}

TEST(Fm, WeightedGraphGainsAreWeightAware) {
  // Path with one heavy edge: refinement must avoid cutting it.
  const std::vector<WeightedEdge> edges = {
      {0, 1, 1.0}, {1, 2, 100.0}, {2, 3, 1.0}};
  const auto g = Graph::from_edges(4, edges);
  std::vector<int> assign = {0, 0, 1, 1};  // cuts the heavy edge
  FmOptions opt;
  opt.max_imbalance = 1.6;
  const auto res = fm_refine_bisection(g, assign, opt);
  EXPECT_LE(res.final_cut, 2.0);
  const auto p = Partition::from_assignment(g, assign, 2);
  EXPECT_EQ(p.part_of(1), p.part_of(2));  // heavy edge internal now
}

TEST(Fm, UnevenTargetFractionIsEnforced) {
  // A 50/50 start under a 25/75 target is out of cap on side 0; FM must
  // repair toward the target, not merely tolerate states near it.
  const auto g = make_grid2d(8, 8);
  std::vector<int> assign(64);
  for (int i = 0; i < 64; ++i) assign[static_cast<std::size_t>(i)] = i < 32 ? 0 : 1;
  FmOptions opt;
  opt.target_fraction_a = 0.25;
  fm_refine_bisection(g, assign, opt);
  const auto p = Partition::from_assignment(g, assign, 2);
  const double frac = p.part_vertex_weight(0) / g.total_vertex_weight();
  EXPECT_LE(frac, 0.25 * opt.max_imbalance + 1e-12);
  EXPECT_GE(frac, 1.0 - 0.75 * opt.max_imbalance - 1e-12);
}

TEST(Fm, RejectsBadTargetFraction) {
  const auto g = make_path(4);
  std::vector<int> assign = {0, 0, 1, 1};
  FmOptions opt;
  opt.target_fraction_a = 0.0;
  EXPECT_THROW(fm_refine_bisection(g, assign, opt), Error);
}

TEST(Fm, RejectsBadSides) {
  const auto g = make_path(4);
  auto p = Partition::from_assignment(g, std::vector<int>{0, 0, 1, 1});
  EXPECT_THROW(fm_refine_bisection(p, 0, 0, {}), Error);
  EXPECT_THROW(fm_refine_bisection(p, 0, 5, {}), Error);
}

}  // namespace
}  // namespace ffp
