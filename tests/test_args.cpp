#include "util/args.hpp"

#include <gtest/gtest.h>

namespace ffp {
namespace {

ArgParser make_parser() {
  ArgParser p;
  p.flag("k", "32", "number of parts")
      .flag("name", "default", "a string")
      .flag("ratio", "0.5", "a number")
      .toggle("verbose", "noise level");
  return p;
}

void parse(ArgParser& p, std::initializer_list<const char*> argv) {
  std::vector<const char*> args = {"prog"};
  args.insert(args.end(), argv);
  p.parse(static_cast<int>(args.size()), args.data());
}

TEST(Args, DefaultsApplyWhenUnset) {
  auto p = make_parser();
  parse(p, {});
  EXPECT_EQ(p.get("name"), "default");
  EXPECT_EQ(p.get_int("k"), 32);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.5);
  EXPECT_FALSE(p.get_bool("verbose"));
  EXPECT_FALSE(p.was_set("k"));
}

TEST(Args, ValuesOverrideDefaults) {
  auto p = make_parser();
  parse(p, {"--k", "8", "--name", "atc", "--ratio", "1.25", "--verbose"});
  EXPECT_EQ(p.get_int("k"), 8);
  EXPECT_EQ(p.get("name"), "atc");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 1.25);
  EXPECT_TRUE(p.get_bool("verbose"));
  EXPECT_TRUE(p.was_set("k"));
}

TEST(Args, PositionalArgumentsCollected) {
  auto p = make_parser();
  parse(p, {"input.graph", "--k", "4", "output.part"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.graph");
  EXPECT_EQ(p.positional()[1], "output.part");
}

TEST(Args, UnknownFlagThrows) {
  auto p = make_parser();
  EXPECT_THROW(parse(p, {"--bogus", "1"}), Error);
}

TEST(Args, MissingValueThrows) {
  auto p = make_parser();
  EXPECT_THROW(parse(p, {"--k"}), Error);
}

TEST(Args, BadTypeThrowsOnAccess) {
  auto p = make_parser();
  parse(p, {"--k", "eight"});
  EXPECT_THROW(p.get_int("k"), Error);
}

TEST(Args, UnregisteredAccessThrows) {
  auto p = make_parser();
  parse(p, {});
  EXPECT_THROW(p.get("nonexistent"), Error);
}

TEST(Args, DuplicateRegistrationThrows) {
  ArgParser p;
  p.flag("x", "1", "first");
  EXPECT_THROW(p.flag("x", "2", "again"), Error);
}

TEST(Args, UsageMentionsFlagsAndHelp) {
  auto p = make_parser();
  const auto usage = p.usage();
  EXPECT_NE(usage.find("--k"), std::string::npos);
  EXPECT_NE(usage.find("number of parts"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
}

}  // namespace
}  // namespace ffp
