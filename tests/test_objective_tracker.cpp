// Drift property suite for ObjectiveTracker: the running value must track a
// from-scratch evaluate() through long adversarial move sequences —
// including part-emptying moves, make_part events, and the bulk
// merge_parts/split_part operations the fusion-fission hot loop uses — and
// the incremental move_delta must agree with the trial_move_delta oracle.
#include "partition/objective_tracker.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "partition/objectives.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace ffp {
namespace {

constexpr ObjectiveKind kAllKinds[] = {
    ObjectiveKind::Cut, ObjectiveKind::NormalizedCut, ObjectiveKind::MinMaxCut,
    ObjectiveKind::RatioCut};

void expect_tracks(const ObjectiveTracker& t, const char* context) {
  const double fresh = t.objective_fn().evaluate(t.partition());
  const double tol = 1e-7 * std::max(1.0, std::abs(fresh));
  EXPECT_NEAR(t.value(), fresh, tol)
      << context << " with " << t.objective_fn().name();
}

TEST(ObjectiveTracker, TracksTenThousandRandomMoves) {
  // Random single-vertex moves across a weighted graph, regularly emptying
  // parts (small part count) and growing new ones via make_part.
  const auto g = with_random_weights(make_grid2d(9, 9), 0.5, 9.5, 3);
  for (const auto kind : kAllKinds) {
    Rng rng(101);
    ObjectiveTracker t(Partition(g, 4), kind);
    for (int step = 0; step < 10000; ++step) {
      const auto v = static_cast<VertexId>(
          rng.below(static_cast<std::uint64_t>(g.num_vertices())));
      int target = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(t.partition().num_parts())));
      if (rng.below(200) == 0) target = t.make_part();
      t.move(v, target);
      if (step % 500 == 0) expect_tracks(t, "mid-run");
    }
    expect_tracks(t, "after 10k moves");
    ASSERT_NO_THROW(t.validate());
  }
}

TEST(ObjectiveTracker, TracksSingletonHeavySequences) {
  // From all-singletons down to a few parts and back up — the Mcut/RatioCut
  // penalty regime where the running sum transits huge magnitudes.
  const auto g = with_random_weights(make_random_geometric(60, 0.25, 9),
                                     1.0, 7.0, 11);
  for (const auto kind : kAllKinds) {
    Rng rng(77);
    ObjectiveTracker t(Partition::singletons(g), kind);
    for (int step = 0; step < 10000; ++step) {
      const auto v = static_cast<VertexId>(
          rng.below(static_cast<std::uint64_t>(g.num_vertices())));
      const int target = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(t.partition().num_parts())));
      t.move(v, target);
      if (step % 1000 == 0) expect_tracks(t, "singleton-heavy");
    }
    expect_tracks(t, "singleton-heavy end");
    ASSERT_NO_THROW(t.validate());
  }
}

TEST(ObjectiveTracker, TracksBulkMergeAndSplit) {
  const auto g = with_random_weights(make_torus(8, 8), 1.0, 5.0, 5);
  for (const auto kind : kAllKinds) {
    Rng rng(13);
    ObjectiveTracker t(Partition(g, 8), kind);
    // Scatter first so parts are non-trivial.
    for (int i = 0; i < 500; ++i) {
      const auto v = static_cast<VertexId>(
          rng.below(static_cast<std::uint64_t>(g.num_vertices())));
      t.move(v, static_cast<int>(rng.below(8)));
    }
    std::vector<std::pair<int, Weight>> conns;
    std::vector<VertexId> moved;
    for (int round = 0; round < 300; ++round) {
      const auto& p = t.partition();
      const auto parts = p.nonempty_parts();
      const int atom = parts[rng.below(parts.size())];
      if (rng.below(2) == 0 && parts.size() >= 2) {
        // Merge with a connected neighbor part (or skip if isolated).
        conns.clear();
        p.connections(atom, conns);
        if (conns.empty()) continue;
        const auto [partner, w] = conns[rng.below(conns.size())];
        t.merge_parts(atom, partner, w);
      } else if (p.part_size(atom) >= 2) {
        // Split off a random non-empty proper subset.
        const auto members = p.members(atom);
        moved.clear();
        for (VertexId v : members) {
          if (rng.below(2) == 0) moved.push_back(v);
        }
        if (moved.empty() || moved.size() == members.size()) continue;
        int fresh = -1;
        for (int q = 0; q < p.num_parts(); ++q) {
          if (p.part_size(q) == 0) {
            fresh = q;
            break;
          }
        }
        if (fresh == -1) fresh = t.make_part();
        t.split_part(atom, fresh, moved);
      }
      if (round % 50 == 0) expect_tracks(t, "bulk ops");
    }
    expect_tracks(t, "bulk ops end");
    ASSERT_NO_THROW(t.validate());
  }
}

TEST(ObjectiveTracker, MoveDeltaMatchesTrialMoveOracle) {
  const auto g = with_random_weights(make_grid2d(7, 6), 0.5, 4.5, 21);
  for (const auto kind : kAllKinds) {
    Rng rng(55);
    ObjectiveTracker t(Partition(g, 5), kind);
    // Mix the partition up, then compare deltas against the
    // move-evaluate-move-back oracle at every state.
    Partition scratch = t.partition();
    for (int step = 0; step < 2000; ++step) {
      const auto v = static_cast<VertexId>(
          rng.below(static_cast<std::uint64_t>(g.num_vertices())));
      const int target = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(t.partition().num_parts())));
      const double delta = t.move_delta(v, target);
      scratch = t.partition();
      const double oracle =
          trial_move_delta(scratch, v, target, t.objective_fn());
      EXPECT_NEAR(delta, oracle, 1e-7 * std::max(1.0, std::abs(oracle)))
          << objective_name(kind) << " at step " << step;
      t.move(v, target);
    }
  }
}

TEST(ObjectiveTracker, TrialMoveFastPathMatchesMoveExactly) {
  // The single-scan accept-test path: trial_move's delta must be bitwise
  // equal to move_delta, and applying the trial must leave the tracker in
  // the bitwise-identical state plain move() would have produced —
  // simulated annealing's results may not shift by a single ulp.
  const auto g = with_random_weights(make_grid2d(8, 7), 0.5, 7.5, 13);
  for (const auto kind : kAllKinds) {
    Rng rng(77);
    ObjectiveTracker fast(Partition(g, 5), kind);
    ObjectiveTracker slow(Partition(g, 5), kind);
    for (int step = 0; step < 4000; ++step) {
      const auto v = static_cast<VertexId>(
          rng.below(static_cast<std::uint64_t>(g.num_vertices())));
      const int target = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(fast.partition().num_parts())));
      const auto trial = fast.trial_move(v, target);
      ASSERT_EQ(trial.delta, slow.move_delta(v, target))
          << objective_name(kind) << " at step " << step;
      if (step % 3 != 0) {  // mix accepted and "rejected" moves
        fast.move(trial);
        slow.move(v, target);
        ASSERT_EQ(fast.value(), slow.value())
            << objective_name(kind) << " at step " << step;
      }
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(fast.partition().part_of(v), slow.partition().part_of(v));
    }
    ASSERT_NO_THROW(fast.validate());
  }
}

TEST(ObjectiveTracker, TrialMoveToOwnPartIsNoop) {
  const auto g = make_grid2d(4, 4);
  ObjectiveTracker t(Partition(g, 2), ObjectiveKind::Cut);
  const int own = t.partition().part_of(3);
  const auto trial = t.trial_move(3, own);
  EXPECT_EQ(trial.delta, 0.0);
  const double before = t.value();
  t.move(trial);
  EXPECT_EQ(t.value(), before);
}

TEST(ObjectiveTracker, AuxTermSumTracksRecompute) {
  const auto g = with_random_weights(make_grid2d(6, 6), 1.0, 3.0, 7);
  const auto leak = +[](const Partition& p, int q) {
    const double internal = p.part_internal(q);
    if (internal <= 0.0) return p.part_cut(q) > 0.0 ? 1e6 : 0.0;
    return p.part_cut(q) / internal;
  };
  Rng rng(3);
  ObjectiveTracker t(Partition(g, 4), ObjectiveKind::MinMaxCut);
  t.track_aux(leak);
  for (int step = 0; step < 3000; ++step) {
    const auto v = static_cast<VertexId>(
        rng.below(static_cast<std::uint64_t>(g.num_vertices())));
    t.move(v, static_cast<int>(rng.below(4)));
    if (step % 250 == 0) {
      double fresh = 0.0;
      for (int q : t.partition().nonempty_parts()) {
        fresh += leak(t.partition(), q);
      }
      EXPECT_NEAR(t.aux_sum(), fresh, 1e-7 * std::max(1.0, std::abs(fresh)));
    }
  }
  ASSERT_NO_THROW(t.validate());
}

/// Custom (non-builtin) objective: exercises the move_delta accumulation
/// fallback. Total cut pairs, duplicated so the tracker cannot recognize it
/// as the built-in singleton.
class CustomCut final : public ObjectiveFn {
 public:
  std::string_view name() const override { return "CustomCut"; }
  double evaluate(const Partition& p) const override {
    return p.total_cut_pairs();
  }
  double move_delta(const Partition& p, VertexId v, int target) const override {
    if (p.part_of(v) == target) return 0.0;
    const auto prof = p.move_profile(v, target);
    return 2.0 * (prof.ext_from - prof.ext_to);
  }
};

TEST(ObjectiveTracker, CustomObjectiveFallbackTracks) {
  const auto g = with_random_weights(make_cycle(40), 1.0, 2.0, 17);
  const CustomCut fn;
  Rng rng(29);
  ObjectiveTracker t(Partition(g, 4), fn);
  for (int step = 0; step < 5000; ++step) {
    const auto v = static_cast<VertexId>(
        rng.below(static_cast<std::uint64_t>(g.num_vertices())));
    t.move(v, static_cast<int>(rng.below(4)));
  }
  expect_tracks(t, "custom fallback");
}

TEST(ObjectiveTracker, ResetAdoptsPartitionAndKnownValue) {
  const auto g = make_grid2d(5, 5);
  ObjectiveTracker t(Partition(g, 3), ObjectiveKind::NormalizedCut);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    t.move(static_cast<VertexId>(rng.below(25)),
           static_cast<int>(rng.below(3)));
  }
  const Partition snapshot = t.partition();
  const double snapshot_value = t.value();
  for (int i = 0; i < 100; ++i) {
    t.move(static_cast<VertexId>(rng.below(25)),
           static_cast<int>(rng.below(3)));
  }
  t.reset(snapshot, snapshot_value);
  expect_tracks(t, "reset with known value");
  t.reset(Partition(g, 3));
  expect_tracks(t, "reset with revalue");
}

TEST(ObjectiveTracker, TakeReturnsTrackedPartition) {
  const auto g = make_grid2d(4, 4);
  ObjectiveTracker t(Partition(g, 2), ObjectiveKind::Cut);
  t.move(0, 1);
  const double value = t.value();
  Partition p = std::move(t).take();
  EXPECT_NEAR(objective(ObjectiveKind::Cut).evaluate(p), value, 1e-9);
  ffp::testing::expect_valid_partition(p);
}

}  // namespace
}  // namespace ffp
