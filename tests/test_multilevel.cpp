#include "multilevel/multilevel.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/balance.hpp"
#include "spectral/linear_partition.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

TEST(MultilevelBisect, BalancedHalves) {
  const auto g = make_grid2d(12, 12);
  const auto side = multilevel_bisect(g, 0.5, {}, 7);
  const auto p = Partition::from_assignment(g, side, 2);
  ffp::testing::expect_valid_partition(p, 2);
  EXPECT_LE(imbalance(p, 2), 1.12);
  EXPECT_LE(p.edge_cut(), 20.0);  // optimal 12
}

TEST(MultilevelBisect, UnevenTargetFraction) {
  const auto g = make_grid2d(10, 10);
  const auto side = multilevel_bisect(g, 0.25, {}, 9);
  const auto p = Partition::from_assignment(g, side, 2);
  const double frac = p.part_vertex_weight(0) / g.total_vertex_weight();
  EXPECT_NEAR(frac, 0.25, 0.08);
}

TEST(MultilevelBisect, FindsBarbellBridge) {
  const auto g = make_barbell(20, 2);
  const auto side = multilevel_bisect(g, 0.5, {}, 11);
  const auto p = Partition::from_assignment(g, side, 2);
  EXPECT_LE(p.edge_cut(), 2.0);
}

TEST(Multilevel, PartitionValidAcrossK) {
  const auto g = make_grid2d(14, 14);
  for (int k : {2, 3, 5, 8, 13}) {
    MultilevelOptions opt;
    const auto p = multilevel_partition(g, k, opt);
    ffp::testing::expect_valid_partition(p, k);
    EXPECT_LE(imbalance(p, k), 1.35) << "k=" << k;
  }
}

TEST(Multilevel, BeatsLinearOnGrid) {
  const auto g = make_grid2d(16, 16);
  const auto ml = multilevel_partition(g, 8, {});
  const auto lin = linear_partition(g, 8);
  EXPECT_LT(ml.edge_cut(), lin.edge_cut());
}

TEST(Multilevel, OctasectionArity) {
  const auto g = make_grid2d(16, 16);
  MultilevelOptions opt;
  opt.arity = SectionArity::Octasection;
  const auto p = multilevel_partition(g, 32, opt);
  ffp::testing::expect_valid_partition(p, 32);
}

TEST(Multilevel, GreedyGrowingInitialPartitioner) {
  const auto g = make_torus(10, 10);
  MultilevelOptions opt;
  opt.initial = InitialPartitioner::GreedyGrowing;
  const auto p = multilevel_partition(g, 4, opt);
  ffp::testing::expect_valid_partition(p, 4);
}

TEST(Multilevel, WeightedGraphQuality) {
  const auto g = with_random_weights(make_grid2d(12, 12), 1.0, 9.0, 13);
  const auto p = multilevel_partition(g, 6, {});
  ffp::testing::expect_valid_partition(p, 6);
  // Must be far below a random split's expected cut fraction (1 - 1/k).
  const double random_cut = g.total_edge_weight() * (1.0 - 1.0 / 6.0);
  EXPECT_LT(p.edge_cut(), random_cut / 2.0);
}

TEST(Multilevel, KEqualsOneAndN) {
  const auto g = make_grid2d(5, 5);
  const auto whole = multilevel_partition(g, 1, {});
  EXPECT_EQ(whole.num_nonempty_parts(), 1);
  const auto atoms = multilevel_partition(g, 25, {});
  ffp::testing::expect_valid_partition(atoms, 25);
}

TEST(Multilevel, SmallGraphsNoCoarsening) {
  const auto g = make_path(6);
  const auto p = multilevel_partition(g, 3, {});
  ffp::testing::expect_valid_partition(p, 3);
  EXPECT_DOUBLE_EQ(p.edge_cut(), 2.0);  // contiguous blocks are optimal
}

TEST(Multilevel, DeterministicForSeed) {
  const auto g = make_random_geometric(150, 0.16, 17);
  MultilevelOptions opt;
  opt.seed = 5;
  const auto a = multilevel_partition(g, 6, opt);
  const auto b = multilevel_partition(g, 6, opt);
  EXPECT_TRUE(std::equal(a.assignment().begin(), a.assignment().end(),
                         b.assignment().begin()));
}

TEST(Multilevel, DisconnectedGraphHandled) {
  // Two separate grids.
  std::vector<WeightedEdge> edges;
  const auto grid = make_grid2d(5, 5);
  for (VertexId v = 0; v < 25; ++v) {
    for (VertexId u : grid.neighbors(v)) {
      if (u > v) {
        edges.push_back({v, u, 1.0});
        edges.push_back({v + 25, u + 25, 1.0});
      }
    }
  }
  const auto g = Graph::from_edges(50, edges);
  const auto p = multilevel_partition(g, 4, {});
  ffp::testing::expect_valid_partition(p, 4);
}

TEST(Multilevel, RejectsBadK) {
  const auto g = make_path(4);
  EXPECT_THROW(multilevel_partition(g, 0, {}), Error);
  EXPECT_THROW(multilevel_partition(g, 5, {}), Error);
}

}  // namespace
}  // namespace ffp
