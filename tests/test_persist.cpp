// persist/atomic_file + persist/checkpoint: the crash-only primitives
// every durable write rides on. CRC known-answer, atomic replace, framed
// record round-trips, torn-tail tolerance, format-error loudness, the
// torn_checkpoint fault drill, and checkpoint save/load under damage.
#include "persist/atomic_file.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "persist/checkpoint.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"

namespace ffp {
namespace {

struct FaultGuard {
  ~FaultGuard() { fault::configure(""); }
};

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(AtomicFile, Crc32KnownAnswer) {
  // The IEEE 802.3 check value every CRC-32 implementation must match.
  EXPECT_EQ(persist::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(persist::crc32(""), 0u);
  EXPECT_NE(persist::crc32("a"), persist::crc32("b"));
}

TEST(AtomicFile, AtomicWriteReplacesWholeFile) {
  const std::string path = tmp_path("atomic_replace.txt");
  persist::atomic_write_file(path, "first contents\n");
  EXPECT_EQ(persist::read_file(path).value(), "first contents\n");
  persist::atomic_write_file(path, "x");
  EXPECT_EQ(persist::read_file(path).value(), "x");
  persist::remove_file(path);
  EXPECT_FALSE(persist::read_file(path).has_value());
}

TEST(AtomicFile, EnsureDirAndListDir) {
  const std::string dir = tmp_path("persist_dir/a/b");
  persist::ensure_dir(dir);
  persist::ensure_dir(dir);  // idempotent
  persist::atomic_write_file(dir + "/zz.txt", "z");
  persist::atomic_write_file(dir + "/aa.txt", "a");
  const auto names = persist::list_dir(dir);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "aa.txt");  // sorted
  EXPECT_EQ(names[1], "zz.txt");
  EXPECT_TRUE(persist::list_dir(dir + "/missing").empty());
}

TEST(AtomicFile, RecordRoundTrip) {
  const std::string path = tmp_path("records_roundtrip.rec");
  persist::remove_file(path);
  {
    persist::RecordWriter writer(path, 7);
    writer.append("alpha");
    writer.append("");  // empty payloads are legal records
    writer.append(std::string(10000, 'x'));
  }
  // Re-open appends, never rewrites.
  {
    persist::RecordWriter writer(path, 7);
    writer.append("beta");
  }
  const auto read = persist::read_records(path, 7);
  EXPECT_FALSE(read.truncated);
  ASSERT_EQ(read.records.size(), 4u);
  EXPECT_EQ(read.records[0], "alpha");
  EXPECT_EQ(read.records[1], "");
  EXPECT_EQ(read.records[2], std::string(10000, 'x'));
  EXPECT_EQ(read.records[3], "beta");
}

TEST(AtomicFile, MissingFileReadsEmpty) {
  const auto read = persist::read_records(tmp_path("never_written.rec"), 1);
  EXPECT_TRUE(read.records.empty());
  EXPECT_FALSE(read.truncated);
}

TEST(AtomicFile, TornTailDropsOnlyTheDamage) {
  const std::string path = tmp_path("torn_tail.rec");
  persist::remove_file(path);
  {
    persist::RecordWriter writer(path, 1);
    writer.append("keep me");
    writer.append("tear me");
  }
  // Simulate kill -9 mid-append: chop bytes off the end of the file.
  std::string bytes = persist::read_file(path).value();
  persist::atomic_write_file(path, bytes.substr(0, bytes.size() - 3));
  const auto read = persist::read_records(path, 1);
  EXPECT_TRUE(read.truncated);
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0], "keep me");
  // A writer re-opening the damaged file appends after what it can trust.
  // (The journal compacts first, so this path only matters for tools.)
}

TEST(AtomicFile, CorruptCrcDropsTheRecord) {
  const std::string path = tmp_path("bad_crc.rec");
  persist::remove_file(path);
  {
    persist::RecordWriter writer(path, 1);
    writer.append("good");
    writer.append("flip a payload bit");
  }
  std::string bytes = persist::read_file(path).value();
  bytes.back() ^= 0x40;  // corrupt the LAST record's payload
  persist::atomic_write_file(path, bytes);
  const auto read = persist::read_records(path, 1);
  EXPECT_TRUE(read.truncated);
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0], "good");
}

TEST(AtomicFile, WrongMagicAndVersionFailLoudly) {
  const std::string path = tmp_path("wrong_header.rec");
  // Not a crash artifact — a format error: reading must throw, not
  // silently treat the file as empty.
  persist::atomic_write_file(path, "this is not a record file at all....");
  EXPECT_THROW(persist::read_records(path, 1), Error);
  EXPECT_THROW(persist::RecordWriter(path, 1), Error);

  persist::remove_file(path);
  { persist::RecordWriter writer(path, 2); }
  EXPECT_THROW(persist::read_records(path, 1), Error);  // version mismatch
  EXPECT_THROW(persist::RecordWriter(path, 99), Error);
}

TEST(AtomicFile, WriteRecordsAtomicCompacts) {
  const std::string path = tmp_path("compacted.rec");
  persist::write_records_atomic(path, 3, {"one", "two"});
  auto read = persist::read_records(path, 3);
  EXPECT_FALSE(read.truncated);
  ASSERT_EQ(read.records.size(), 2u);
  persist::write_records_atomic(path, 3, {});
  read = persist::read_records(path, 3);
  EXPECT_TRUE(read.records.empty());
  EXPECT_FALSE(read.truncated);
}

TEST(AtomicFile, TornCheckpointFaultProducesRejectedFile) {
  FaultGuard guard;
  const std::string path = tmp_path("torn_fault.rec");
  persist::write_records_atomic(path, 1, {"the good version"});
  // The fault point bypasses the atomic dance and short-writes half the
  // bytes straight to the final path — the legacy non-atomic failure
  // mode. The framing must refuse to surface a record from the wreck.
  fault::configure("torn_checkpoint=1;max_fires=1");
  persist::write_records_atomic(path, 1,
                                {"a replacement that never fully lands"});
  const auto read = persist::read_records(path, 1);
  EXPECT_TRUE(read.truncated);
  EXPECT_TRUE(read.records.empty());
}

TEST(Checkpoint, RoundTripExactly) {
  const std::string path = tmp_path("ckpt_roundtrip.rec");
  persist::Checkpoint ck;
  ck.k = 4;
  ck.value = 0.1 + 0.2;  // a value that needs %.17g to round-trip
  ck.assignment = {0, 1, 2, 3, 0, 1, 2, 3};
  persist::save_checkpoint(path, ck);
  const auto loaded = persist::load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->k, 4);
  EXPECT_EQ(loaded->value, ck.value);  // bit-exact
  EXPECT_EQ(loaded->assignment, ck.assignment);
}

TEST(Checkpoint, DamageReadsAsNoCheckpoint) {
  const std::string path = tmp_path("ckpt_damage.rec");
  EXPECT_FALSE(persist::load_checkpoint(path).has_value());  // missing

  persist::Checkpoint ck;
  ck.k = 2;
  ck.value = 1.0;
  ck.assignment = {0, 1};
  persist::save_checkpoint(path, ck);
  std::string bytes = persist::read_file(path).value();
  persist::atomic_write_file(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(persist::load_checkpoint(path).has_value());  // torn

  persist::atomic_write_file(path, "garbage");
  EXPECT_FALSE(persist::load_checkpoint(path).has_value());  // wrong magic

  persist::write_records_atomic(path, persist::kCheckpointVersion,
                                {"k 2\nvalue nonsense\n0\n1\n"});
  EXPECT_FALSE(persist::load_checkpoint(path).has_value());  // unparsable
}

TEST(Checkpoint, TornCheckpointFaultLoadsAsCold) {
  FaultGuard guard;
  const std::string path = tmp_path("ckpt_torn_fault.rec");
  persist::remove_file(path);
  fault::configure("torn_checkpoint=1;max_fires=1");
  persist::Checkpoint ck;
  ck.k = 2;
  ck.value = 3.5;
  ck.assignment = {0, 0, 1, 1};
  persist::save_checkpoint(path, ck);  // short-writes via the fault
  EXPECT_FALSE(persist::load_checkpoint(path).has_value());
  // Next save (fault budget spent) repairs the file completely.
  persist::save_checkpoint(path, ck);
  ASSERT_TRUE(persist::load_checkpoint(path).has_value());
}

TEST(Checkpoint, PathIsDeterministicAndKeyed) {
  const std::string a = persist::checkpoint_path("d", 1, "spec-a");
  EXPECT_EQ(a, persist::checkpoint_path("d", 1, "spec-a"));
  EXPECT_NE(a, persist::checkpoint_path("d", 2, "spec-a"));
  EXPECT_NE(a, persist::checkpoint_path("d", 1, "spec-b"));
  EXPECT_EQ(a.rfind("d/", 0), 0u);
}

}  // namespace
}  // namespace ffp
