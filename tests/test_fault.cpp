// Unit tests for the fault injector itself: spec parsing, probability
// semantics, the fires budget that makes chaos runs convergent, and
// determinism of the seeded roll stream.
#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace ffp {
namespace {

/// Every test leaves the global injector off, pass or fail.
struct FaultGuard {
  ~FaultGuard() { fault::configure(""); }
};

TEST(Fault, DisabledByDefaultAndAfterClear) {
  FaultGuard guard;
  fault::configure("");
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::fire(fault::Point::ConnDrop));
  EXPECT_EQ(fault::fires(), 0);
}

TEST(Fault, ProbabilityOneFiresUntilBudgetSpent) {
  FaultGuard guard;
  fault::configure("conn_drop=1;seed=3;max_fires=2");
  EXPECT_TRUE(fault::enabled());
  EXPECT_TRUE(fault::fire(fault::Point::ConnDrop));
  EXPECT_TRUE(fault::fire(fault::Point::ConnDrop));
  // Budget spent: the injector goes quiet — this is what makes chaos
  // tests converge to a clean run after exactly N injected faults.
  EXPECT_FALSE(fault::fire(fault::Point::ConnDrop));
  EXPECT_FALSE(fault::enabled());
  EXPECT_EQ(fault::fires(), 2);
}

TEST(Fault, ProbabilityZeroNeverFires) {
  FaultGuard guard;
  fault::configure("conn_drop=0;short_read=1");
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault::fire(fault::Point::ConnDrop));
  }
}

TEST(Fault, PointsAreIndependent) {
  FaultGuard guard;
  fault::configure("short_read=1");
  EXPECT_TRUE(fault::fire(fault::Point::ShortRead));
  EXPECT_FALSE(fault::fire(fault::Point::TornWrite));
  EXPECT_FALSE(fault::fire(fault::Point::AcceptFail));
}

TEST(Fault, PersistencePointsParseAndFire) {
  FaultGuard guard;
  // The durable-state drill points (persist/): parse, fire, and stay
  // independent of each other. crash_after_append's _exit side effect
  // lives in the journal, not the injector, so firing it here is safe.
  fault::configure("crash_after_append=1;max_fires=1");
  EXPECT_FALSE(fault::fire(fault::Point::TornCheckpoint));
  EXPECT_TRUE(fault::fire(fault::Point::CrashAfterAppend));
  EXPECT_FALSE(fault::fire(fault::Point::CrashAfterAppend));  // budget spent

  fault::configure("torn_checkpoint=1;max_fires=1");
  EXPECT_FALSE(fault::fire(fault::Point::CrashAfterAppend));
  EXPECT_TRUE(fault::fire(fault::Point::TornCheckpoint));
  EXPECT_FALSE(fault::fire(fault::Point::TornCheckpoint));
}

TEST(Fault, SeededRollStreamIsDeterministic) {
  FaultGuard guard;
  const auto roll_sequence = [] {
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(fault::fire(fault::Point::ConnDrop));
    }
    return out;
  };
  fault::configure("conn_drop=0.5;seed=42");
  const std::vector<bool> first = roll_sequence();
  fault::configure("conn_drop=0.5;seed=42");
  const std::vector<bool> second = roll_sequence();
  EXPECT_EQ(first, second);
  // ... and a different seed gives a different schedule.
  fault::configure("conn_drop=0.5;seed=43");
  EXPECT_NE(roll_sequence(), first);
}

TEST(Fault, DelayConfiguration) {
  FaultGuard guard;
  fault::configure("delay_response=1;delay_ms=5");
  EXPECT_EQ(fault::delay_ms(), 5.0);
  fault::configure("");
  EXPECT_EQ(fault::delay_ms(), 100.0);  // default restored
}

TEST(Fault, MalformedSpecsFailLoudly) {
  FaultGuard guard;
  EXPECT_THROW(fault::configure("bogus_point=1"), Error);
  EXPECT_THROW(fault::configure("conn_drop"), Error);        // no '='
  EXPECT_THROW(fault::configure("conn_drop=1.5"), Error);    // p > 1
  EXPECT_THROW(fault::configure("conn_drop=x"), Error);
  EXPECT_THROW(fault::configure("delay_ms=-1"), Error);
  EXPECT_THROW(fault::configure("max_fires=-2"), Error);
  // A failed configure must leave the injector off, not half-armed.
  fault::configure("");
  EXPECT_FALSE(fault::enabled());
}

TEST(Fault, ReconfigureResetsStateCompletely) {
  FaultGuard guard;
  fault::configure("conn_drop=1;max_fires=5");
  EXPECT_TRUE(fault::fire(fault::Point::ConnDrop));
  EXPECT_EQ(fault::fires(), 1);
  fault::configure("short_read=1");
  EXPECT_EQ(fault::fires(), 0);  // counter cleared
  EXPECT_FALSE(fault::fire(fault::Point::ConnDrop));  // old point cleared
}

}  // namespace
}  // namespace ffp
