#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace ffp {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, SplitWsBasics) {
  const auto parts = split_ws("  a\tbb  ccc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "bb");
  EXPECT_EQ(parts[2], "ccc");
}

TEST(Strings, SplitWsEmpty) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t ").empty());
}

TEST(Strings, SplitWsHandlesCarriageReturn) {
  const auto parts = split_ws("1 2\r");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "2");
}

TEST(Strings, ParseIntValid) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-17").value(), -17);
  EXPECT_EQ(parse_int("0").value(), 0);
}

TEST(Strings, ParseIntInvalid) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("x12").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
}

TEST(Strings, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double("7").value(), 7.0);
}

TEST(Strings, ParseDoubleInvalid) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5kg").has_value());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hello world", "hello"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_FALSE(starts_with("world", "hello"));
}

TEST(Strings, FormatProducesPrintfOutput) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("no args"), "no args");
}

}  // namespace
}  // namespace ffp
