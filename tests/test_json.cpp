#include "service/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ffp {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e3").as_number(), -2500.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, PreservesExactIntegers) {
  EXPECT_EQ(JsonValue::parse("9007199254740993").as_int(),
            9007199254740993LL);  // beyond double's exact range
  EXPECT_EQ(JsonValue::parse("-42").as_int(), -42);
  // Written as a float → not an integer, even when integral-valued.
  EXPECT_THROW(JsonValue::parse("42.0").as_int(), Error);
  EXPECT_THROW(JsonValue::parse("1e3").as_int(), Error);
}

TEST(Json, ParsesNestedStructures) {
  const auto v = JsonValue::parse(
      R"({"a":[1,2,{"b":"c"}],"d":{"e":null},"f":-1.5})");
  EXPECT_EQ(v.as_object().size(), 3u);
  EXPECT_EQ(v.find("a")->as_array()[2].find("b")->as_string(), "c");
  EXPECT_TRUE(v.find("d")->find("e")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, HandlesStringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\nd\te")").as_string(),
            "a\"b\\c\nd\te");
  EXPECT_EQ(JsonValue::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  // Surrogate pair → 4-byte UTF-8.
  EXPECT_EQ(JsonValue::parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
  EXPECT_THROW(JsonValue::parse(R"("\ud83d")"), Error);  // unpaired high
  EXPECT_THROW(JsonValue::parse(R"("\udc00")"), Error);  // unpaired low
  EXPECT_THROW(JsonValue::parse(R"("\x41")"), Error);    // bad escape
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), Error);
  EXPECT_THROW(JsonValue::parse("{"), Error);
  EXPECT_THROW(JsonValue::parse("[1,]"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\":}"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), Error);
  EXPECT_THROW(JsonValue::parse("{a:1}"), Error);
  EXPECT_THROW(JsonValue::parse("nul"), Error);
  EXPECT_THROW(JsonValue::parse("1 2"), Error);       // trailing bytes
  EXPECT_THROW(JsonValue::parse("\"a\" x"), Error);   // trailing bytes
  EXPECT_THROW(JsonValue::parse("\"unterminated"), Error);
  EXPECT_THROW(JsonValue::parse("\"ctrl\x01char\""), Error);
  EXPECT_THROW(JsonValue::parse("inf"), Error);
  EXPECT_THROW(JsonValue::parse("1e999"), Error);  // overflows to inf
}

TEST(Json, RejectsDuplicateKeys) {
  EXPECT_THROW(JsonValue::parse(R"({"a":1,"a":2})"), Error);
}

TEST(Json, EnforcesLimits) {
  JsonLimits tight;
  tight.max_depth = 3;
  EXPECT_NO_THROW(JsonValue::parse("[[[1]]]", tight));
  EXPECT_THROW(JsonValue::parse("[[[[1]]]]", tight), Error);

  tight = {};
  tight.max_bytes = 8;
  EXPECT_THROW(JsonValue::parse("[1,2,3,4,5]", tight), Error);

  tight = {};
  tight.max_elements = 4;
  EXPECT_THROW(JsonValue::parse("[1,2,3,4,5]", tight), Error);
}

TEST(Json, ErrorsCarryByteOffsets) {
  try {
    JsonValue::parse("{\"a\": bogus}");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("byte 6"), std::string::npos)
        << e.what();
  }
}

TEST(Json, QuotedAppendEscapes) {
  std::string out;
  json_append_quoted(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
  // Round-trip through the parser.
  EXPECT_EQ(JsonValue::parse(out).as_string(), "a\"b\\c\nd\x01");
}

}  // namespace
}  // namespace ffp
