#include "linalg/rqi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "linalg/lanczos.hpp"
#include "spectral/laplacian.hpp"
#include "util/rng.hpp"

namespace ffp {
namespace {

TEST(Rqi, RefinesPerturbedFiedlerVectorOnPath) {
  const int n = 14;
  const auto g = make_path(n);
  const LaplacianOperator op(g);

  // Exact Fiedler vector of a path: cos(π (i + 1/2) / n).
  std::vector<double> x0(static_cast<std::size_t>(n));
  Rng rng(3);
  for (int i = 0; i < n; ++i) {
    x0[static_cast<std::size_t>(i)] =
        std::cos(M_PI * (i + 0.5) / n) + 0.05 * rng.uniform(-1.0, 1.0);
  }
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Combinatorial)};
  const auto r = rqi_refine(op, x0, {}, deflate);
  EXPECT_TRUE(r.converged);
  const double expect = 4.0 * std::pow(std::sin(M_PI / (2.0 * n)), 2);
  EXPECT_NEAR(r.value, expect, 1e-7);
}

TEST(Rqi, ResidualIsSmallAfterConvergence) {
  const auto g = make_grid2d(6, 5);
  const LaplacianOperator op(g);
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Combinatorial)};

  // Start from Lanczos' rough answer with a loose tolerance.
  LanczosOptions lopt;
  lopt.nev = 1;
  lopt.tolerance = 1e-2;
  const auto rough = lanczos_smallest(op, lopt, deflate);
  ASSERT_GE(rough.pairs.size(), 1u);

  RqiOptions ropt;
  ropt.tolerance = 1e-9;
  const auto r = rqi_refine(op, rough.pairs[0].vector, ropt, deflate);
  EXPECT_TRUE(r.converged);

  std::vector<double> ax(r.vector.size());
  op.apply(r.vector, ax);
  double res2 = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const double d = ax[i] - r.value * r.vector[i];
    res2 += d * d;
  }
  EXPECT_LT(std::sqrt(res2), 1e-7);
}

TEST(Rqi, StaysOrthogonalToDeflation) {
  const auto g = make_torus(5, 6);
  const LaplacianOperator op(g);
  const auto ones = trivial_eigenvector(g, SpectralProblem::Combinatorial);
  std::vector<std::vector<double>> deflate{ones};

  Rng rng(5);
  std::vector<double> x0(static_cast<std::size_t>(g.num_vertices()));
  for (auto& v : x0) v = rng.uniform(-1.0, 1.0);
  const auto r = rqi_refine(op, x0, {}, deflate);
  EXPECT_NEAR(std::abs(dot(r.vector, ones)), 0.0, 1e-6);
  EXPECT_GT(r.value, 1e-6);  // must not collapse to the zero eigenvalue
}

TEST(Rqi, ExactEigenvectorConvergesImmediately) {
  const int n = 10;
  const auto g = make_path(n);
  const LaplacianOperator op(g);
  std::vector<double> exact(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    exact[static_cast<std::size_t>(i)] = std::cos(M_PI * (i + 0.5) / n);
  }
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Combinatorial)};
  const auto r = rqi_refine(op, exact, {}, deflate);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
}

TEST(Rqi, NormalizedVectorReturned) {
  const auto g = make_grid2d(4, 4);
  const LaplacianOperator op(g);
  Rng rng(9);
  std::vector<double> x0(16);
  for (auto& v : x0) v = rng.uniform(-1.0, 1.0);
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Combinatorial)};
  const auto r = rqi_refine(op, x0, {}, deflate);
  EXPECT_NEAR(norm2(r.vector), 1.0, 1e-9);
}

TEST(Rqi, RejectsSizeMismatch) {
  const auto g = make_path(5);
  const LaplacianOperator op(g);
  const std::vector<double> bad(3, 1.0);
  EXPECT_THROW(rqi_refine(op, bad, {}), Error);
}

TEST(Rqi, VectorInsideDeflationSpanReturnsZeroState) {
  const auto g = make_path(6);
  const LaplacianOperator op(g);
  const auto ones = trivial_eigenvector(g, SpectralProblem::Combinatorial);
  std::vector<std::vector<double>> deflate{ones};
  const auto r = rqi_refine(op, ones, {}, deflate);
  EXPECT_FALSE(r.converged);
}

}  // namespace
}  // namespace ffp
