#include "spectral/fiedler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "linalg/operators.hpp"
#include "spectral/laplacian.hpp"

namespace ffp {
namespace {

TEST(Fiedler, LanczosEngineMatchesClosedFormOnPath) {
  const int n = 20;
  const auto g = make_path(n);
  FiedlerOptions opt;
  const auto r = fiedler_vectors(g, opt);
  ASSERT_GE(r.vectors.size(), 1u);
  const double expect = 4.0 * std::pow(std::sin(M_PI / (2.0 * n)), 2);
  EXPECT_NEAR(r.values[0], expect, 1e-6);
}

TEST(Fiedler, FiedlerVectorIsMonotoneOnPath) {
  // The path's Fiedler vector is cos(π(i+1/2)/n): strictly monotone, so it
  // sorts the path — the property spectral bisection relies on.
  const auto g = make_path(15);
  const auto r = fiedler_vectors(g, {});
  const auto& f = r.vectors[0];
  const bool increasing = f[1] > f[0];
  for (std::size_t i = 1; i < f.size(); ++i) {
    if (increasing) {
      EXPECT_GT(f[i], f[i - 1]);
    } else {
      EXPECT_LT(f[i], f[i - 1]);
    }
  }
}

TEST(Fiedler, EnginesAgreeOnElongatedGrid) {
  // RQI converges to the eigenpair nearest its (coarse-grid) starting
  // Rayleigh quotient, so engine agreement on the exact pair needs λ2 well
  // separated from λ3: a 24×4 grid has λ3/λ2 ≈ 4.
  const auto g = make_grid2d(4, 24);
  FiedlerOptions lanczos;
  lanczos.engine = FiedlerEngine::Lanczos;
  FiedlerOptions rqi;
  rqi.engine = FiedlerEngine::MultilevelRqi;
  rqi.coarse_vertices = 32;
  const auto a = fiedler_vectors(g, lanczos);
  const auto b = fiedler_vectors(g, rqi);
  ASSERT_GE(a.values.size(), 1u);
  ASSERT_GE(b.values.size(), 1u);
  EXPECT_NEAR(a.values[0], b.values[0], 1e-4);
  // Same eigenvector up to sign.
  const double d = std::abs(dot(a.vectors[0], b.vectors[0]));
  EXPECT_NEAR(d, 1.0, 1e-3);
}

TEST(Fiedler, RqiEngineReturnsGenuineEigenpair) {
  // On a squarish grid RQI may land on a nearby mode, but what it returns
  // must be an actual eigenpair of small residual in the low spectrum.
  const auto g = make_grid2d(12, 9);
  FiedlerOptions rqi;
  rqi.engine = FiedlerEngine::MultilevelRqi;
  rqi.coarse_vertices = 24;
  const auto b = fiedler_vectors(g, rqi);
  ASSERT_GE(b.vectors.size(), 1u);
  const LaplacianOperator op(g);
  std::vector<double> ax(b.vectors[0].size());
  op.apply(b.vectors[0], ax);
  double res2 = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const double r = ax[i] - b.values[0] * b.vectors[0][i];
    res2 += r * r;
  }
  EXPECT_LT(std::sqrt(res2), 1e-5);
  EXPECT_GT(b.values[0], 0.0);
  EXPECT_LT(b.values[0], 0.5);  // low end of the grid spectrum
}

TEST(Fiedler, MultipleVectorsAreOrthogonal) {
  const auto g = make_grid2d(8, 8);
  FiedlerOptions opt;
  opt.count = 3;
  const auto r = fiedler_vectors(g, opt);
  ASSERT_EQ(r.vectors.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      EXPECT_NEAR(std::abs(dot(r.vectors[i], r.vectors[j])), 0.0, 1e-6);
    }
  }
}

TEST(Fiedler, ValuesAscending) {
  const auto g = make_torus(7, 6);
  FiedlerOptions opt;
  opt.count = 3;
  const auto r = fiedler_vectors(g, opt);
  for (std::size_t i = 1; i < r.values.size(); ++i) {
    EXPECT_LE(r.values[i - 1], r.values[i] + 1e-9);
  }
}

TEST(Fiedler, NormalizedProblemInUnitRange) {
  const auto g = with_random_weights(make_grid2d(6, 6), 0.5, 5.0, 11);
  FiedlerOptions opt;
  opt.problem = SpectralProblem::Normalized;
  opt.count = 2;
  const auto r = fiedler_vectors(g, opt);
  for (double v : r.values) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 2.0 + 1e-9);
  }
}

TEST(Fiedler, MultilevelRqiOnWeightedGraph) {
  const auto g = with_random_weights(make_grid2d(10, 10), 1.0, 7.0, 13);
  FiedlerOptions opt;
  opt.engine = FiedlerEngine::MultilevelRqi;
  opt.coarse_vertices = 25;
  const auto r = fiedler_vectors(g, opt);
  ASSERT_GE(r.vectors.size(), 1u);
  // Residual check through the operator.
  const LaplacianOperator op(g);
  std::vector<double> ax(r.vectors[0].size());
  op.apply(r.vectors[0], ax);
  double res2 = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const double d = ax[i] - r.values[0] * r.vectors[0][i];
    res2 += d * d;
  }
  EXPECT_LT(std::sqrt(res2), 1e-4);
}

TEST(Fiedler, BarbellFiedlerSeparatesCliques) {
  const auto g = make_barbell(8, 2);
  const auto r = fiedler_vectors(g, {});
  const auto& f = r.vectors[0];
  // All of clique A on one sign, all of clique B on the other.
  const bool a_positive = f[0] > 0;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(f[static_cast<std::size_t>(i)] > 0, a_positive);
  }
  for (int i = 10; i < 18; ++i) {
    EXPECT_EQ(f[static_cast<std::size_t>(i)] > 0, !a_positive);
  }
}

TEST(Fiedler, RejectsDegenerateInputs) {
  const auto g = make_path(5);
  FiedlerOptions bad;
  bad.count = 0;
  EXPECT_THROW(fiedler_vectors(g, bad), Error);
  EXPECT_THROW(fiedler_vectors(Graph::from_edges(1, {}), {}), Error);
}

TEST(TrivialEigenvector, NormalizedVariantFollowsDegrees) {
  const auto g = make_star(3);
  const auto v = trivial_eigenvector(g, SpectralProblem::Normalized);
  // Center degree 3, leaves 1 → components proportional to sqrt(d).
  EXPECT_NEAR(v[0] / v[1], std::sqrt(3.0), 1e-9);
  EXPECT_NEAR(norm2(v), 1.0, 1e-12);
}

}  // namespace
}  // namespace ffp
