#include "linalg/tridiag.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace ffp {
namespace {

TEST(Tridiag, OneByOne) {
  const double d[1] = {3.5};
  const auto r = tridiag_eigen(std::span<const double>(d, 1), {});
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_DOUBLE_EQ(r.values[0], 3.5);
  EXPECT_DOUBLE_EQ(r.vectors[0][0], 1.0);
}

TEST(Tridiag, TwoByTwoClosedForm) {
  // [[a, b], [b, c]] with a=1, c=3, b=1: eigenvalues 2 ± sqrt(2).
  const double d[2] = {1.0, 3.0};
  const double e[1] = {1.0};
  const auto r = tridiag_eigen(std::span<const double>(d, 2),
                               std::span<const double>(e, 1));
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_NEAR(r.values[0], 2.0 - std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(r.values[1], 2.0 + std::sqrt(2.0), 1e-12);
}

TEST(Tridiag, DiagonalMatrixSortsValues) {
  const double d[3] = {5.0, 1.0, 3.0};
  const double e[2] = {0.0, 0.0};
  const auto r = tridiag_eigen(std::span<const double>(d, 3),
                               std::span<const double>(e, 2));
  EXPECT_DOUBLE_EQ(r.values[0], 1.0);
  EXPECT_DOUBLE_EQ(r.values[1], 3.0);
  EXPECT_DOUBLE_EQ(r.values[2], 5.0);
}

// Laplacian of a path graph as a tridiagonal matrix has known eigenvalues
// 2 − 2cos(kπ/n), k = 0..n−1... (free-ended path: 4 sin^2(kπ/2n)).
TEST(Tridiag, PathLaplacianEigenvalues) {
  const int n = 8;
  std::vector<double> d(n, 2.0);
  d.front() = d.back() = 1.0;
  std::vector<double> e(n - 1, -1.0);
  const auto r = tridiag_eigen(d, e);
  for (int k = 0; k < n; ++k) {
    const double expect =
        4.0 * std::pow(std::sin(k * M_PI / (2.0 * n)), 2.0);
    EXPECT_NEAR(r.values[static_cast<std::size_t>(k)], expect, 1e-10);
  }
}

TEST(Tridiag, EigenvectorsAreOrthonormal) {
  const int n = 12;
  std::vector<double> d(n), e(n - 1);
  for (int i = 0; i < n; ++i) d[static_cast<std::size_t>(i)] = i * 0.7 - 2.0;
  for (int i = 0; i < n - 1; ++i) e[static_cast<std::size_t>(i)] = 1.0 + 0.1 * i;
  const auto r = tridiag_eigen(d, e);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double dotv = 0.0;
      for (int t = 0; t < n; ++t) {
        dotv += r.vectors[static_cast<std::size_t>(i)][static_cast<std::size_t>(t)] *
                r.vectors[static_cast<std::size_t>(j)][static_cast<std::size_t>(t)];
      }
      EXPECT_NEAR(dotv, i == j ? 1.0 : 0.0, 1e-10) << i << "," << j;
    }
  }
}

TEST(Tridiag, ReconstructsMatrix) {
  // T = V diag(λ) V^T must reproduce the tridiagonal entries.
  const int n = 6;
  std::vector<double> d = {1.0, -0.5, 2.0, 0.0, 3.0, 1.5};
  std::vector<double> e = {0.5, 1.5, -1.0, 0.25, 2.0};
  const auto r = tridiag_eigen(d, e);
  auto entry = [&](int i, int j) {
    double acc = 0.0;
    for (int t = 0; t < n; ++t) {
      acc += r.values[static_cast<std::size_t>(t)] *
             r.vectors[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] *
             r.vectors[static_cast<std::size_t>(t)][static_cast<std::size_t>(j)];
    }
    return acc;
  };
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(entry(i, i), d[static_cast<std::size_t>(i)], 1e-9);
    if (i + 1 < n) {
      EXPECT_NEAR(entry(i, i + 1), e[static_cast<std::size_t>(i)], 1e-9);
    }
    if (i + 2 < n) {
      EXPECT_NEAR(entry(i, i + 2), 0.0, 1e-9);
    }
  }
}

TEST(Tridiag, ValuesAscending) {
  std::vector<double> d = {4.0, -1.0, 0.5, 2.2, 2.2};
  std::vector<double> e = {0.3, 0.3, 0.3, 0.3};
  const auto r = tridiag_eigen(d, e);
  for (std::size_t i = 1; i < r.values.size(); ++i) {
    EXPECT_LE(r.values[i - 1], r.values[i]);
  }
}

TEST(Tridiag, RejectsBadShapes) {
  const double d[2] = {1.0, 2.0};
  EXPECT_THROW(tridiag_eigen(std::span<const double>(d, 2),
                             std::span<const double>(d, 2)),
               Error);
  EXPECT_THROW(tridiag_eigen({}, {}), Error);
}

}  // namespace
}  // namespace ffp
