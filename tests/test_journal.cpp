// persist/journal: WAL record lifecycle, tolerant replay over CRC-damaged
// tails, duplicate-terminal tolerance, unknown-version loudness, and
// compaction — including under concurrent appenders.
#include "persist/journal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "persist/atomic_file.hpp"
#include "util/check.hpp"

namespace ffp {
namespace {

std::string tmp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  persist::remove_file(path);
  return path;
}

TEST(Journal, LifecycleAndAutoCompaction) {
  const std::string path = tmp_journal("jr_lifecycle.rec");
  persist::Journal journal(path);
  EXPECT_TRUE(journal.recovered().empty());
  EXPECT_EQ(journal.outstanding(), 0u);

  journal.submitted(1, "graph=gen:path:8\nk=2\n");
  journal.submitted(2, "graph=gen:path:9\nk=3\n");
  journal.started(1);
  EXPECT_EQ(journal.outstanding(), 2u);
  journal.terminal(1, "done");
  EXPECT_EQ(journal.outstanding(), 1u);
  EXPECT_EQ(journal.compactions(), 0);  // job 2 still live
  journal.terminal(2, "failed");
  EXPECT_EQ(journal.outstanding(), 0u);
  // All entries terminal -> the file compacted to an empty header.
  EXPECT_EQ(journal.compactions(), 1);
  const auto read = persist::read_records(path, persist::kJournalVersion);
  EXPECT_TRUE(read.records.empty());
  EXPECT_FALSE(read.truncated);
}

TEST(Journal, ReplaySeparatesFinishedFromUnfinished) {
  const std::string path = tmp_journal("jr_replay.rec");
  {
    persist::Journal journal(path);
    journal.submitted(1, "payload-one");
    journal.submitted(2, "payload-two");
    journal.submitted(3, "payload-three");
    journal.started(1);
    journal.started(2);
    journal.terminal(2, "done");
    // Crash here: 1 is running, 3 is queued, 2 finished.
  }
  const auto replay = persist::Journal::replay(path);
  EXPECT_FALSE(replay.truncated);
  ASSERT_EQ(replay.unfinished.size(), 2u);
  EXPECT_EQ(replay.unfinished[0], "payload-one");  // submission order
  EXPECT_EQ(replay.unfinished[1], "payload-three");

  // A new journal over the same file recovers the same list, then owns a
  // freshly compacted file containing only ITS jobs.
  persist::Journal next(path);
  ASSERT_EQ(next.recovered().size(), 2u);
  EXPECT_EQ(next.recovered()[0], "payload-one");
  EXPECT_FALSE(next.recovered_truncated());
  EXPECT_EQ(next.outstanding(), 0u);
  persist::Journal after(path);  // compaction made the hand-off clean
  EXPECT_TRUE(after.recovered().empty());
}

TEST(Journal, CrcCorruptTailKeepsPriorRecords) {
  const std::string path = tmp_journal("jr_corrupt_tail.rec");
  {
    persist::Journal journal(path);
    journal.submitted(1, "survives");
    journal.submitted(2, "this submitted record gets torn");
  }
  std::string bytes = persist::read_file(path).value();
  persist::atomic_write_file(path, bytes.substr(0, bytes.size() - 5));
  const auto replay = persist::Journal::replay(path);
  EXPECT_TRUE(replay.truncated);
  ASSERT_EQ(replay.unfinished.size(), 1u);
  EXPECT_EQ(replay.unfinished[0], "survives");

  persist::Journal journal(path);
  EXPECT_TRUE(journal.recovered_truncated());
  ASSERT_EQ(journal.recovered().size(), 1u);
}

TEST(Journal, DuplicateAndUnknownTerminalsAreHarmless) {
  const std::string path = tmp_journal("jr_dup_terminal.rec");
  persist::Journal journal(path);
  journal.submitted(1, "p1");
  journal.terminal(1, "done");
  journal.terminal(1, "done");   // duplicate
  journal.terminal(42, "done");  // never submitted
  EXPECT_EQ(journal.outstanding(), 0u);
  const auto replay = persist::Journal::replay(path);
  EXPECT_TRUE(replay.unfinished.empty());
  EXPECT_FALSE(replay.truncated);
}

TEST(Journal, DuplicateSubmittedRecordsDedup) {
  // A compaction rewrite followed by a crash can leave a submitted record
  // that replays again alongside a duplicate appended later; the replay
  // must not produce the job twice.
  const std::string path = tmp_journal("jr_dup_submit.rec");
  {
    persist::RecordWriter writer(path, persist::kJournalVersion);
    writer.append("S 5\nsame-payload");
    writer.append("S 5\nsame-payload");
  }
  const auto replay = persist::Journal::replay(path);
  ASSERT_EQ(replay.unfinished.size(), 1u);
  EXPECT_EQ(replay.unfinished[0], "same-payload");
}

TEST(Journal, UnknownVersionHeaderRejected) {
  const std::string path = tmp_journal("jr_bad_version.rec");
  { persist::RecordWriter writer(path, persist::kJournalVersion + 98); }
  EXPECT_THROW(persist::Journal::replay(path), Error);
  EXPECT_THROW(persist::Journal journal(path), Error);

  persist::atomic_write_file(path, "not a journal");
  EXPECT_THROW(persist::Journal journal(path), Error);
}

TEST(Journal, UnparsableRecordFlagsTruncation) {
  const std::string path = tmp_journal("jr_unparsable.rec");
  {
    persist::RecordWriter writer(path, persist::kJournalVersion);
    writer.append("S 1\ngood");
    writer.append("Z total nonsense");  // valid frame, invalid encoding
    writer.append("S 2\nalso good");
  }
  const auto replay = persist::Journal::replay(path);
  EXPECT_TRUE(replay.truncated);  // surfaced so the operator can see it
  ASSERT_EQ(replay.unfinished.size(), 2u);  // ...but parsing continued
}

TEST(Journal, CompactionUnderConcurrentAppends) {
  const std::string path = tmp_journal("jr_concurrent.rec");
  persist::Journal journal(path);
  // 8 threads × 25 jobs, each submit/start/terminal — every terminal that
  // empties the outstanding set compacts the file while siblings append.
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 25;
  std::atomic<std::uint64_t> next_id{1};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        const std::uint64_t id = next_id.fetch_add(1);
        journal.submitted(id, "job-" + std::to_string(id));
        journal.started(id);
        journal.terminal(id, "done");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(journal.outstanding(), 0u);
  EXPECT_GE(journal.compactions(), 1);
  // The survivor is a clean, fully-parsable journal with nothing owed.
  const auto replay = persist::Journal::replay(path);
  EXPECT_FALSE(replay.truncated);
  EXPECT_TRUE(replay.unfinished.empty());
}

}  // namespace
}  // namespace ffp
