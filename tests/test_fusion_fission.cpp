#include "core/fusion_fission.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "metaheuristics/percolation.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

Graph test_graph() {
  return with_random_weights(make_grid2d(9, 9), 1.0, 7.0, 5);
}

TEST(FusionFission, InitializeReachesTargetPartCount) {
  const auto g = test_graph();
  FusionFissionOptions opt;
  opt.seed = 3;
  FusionFission ff(g, 6, opt);
  const auto init = ff.initialize();
  ffp::testing::expect_valid_partition(init);
  EXPECT_LE(init.num_nonempty_parts(), 8);
  EXPECT_GE(init.num_nonempty_parts(), 2);
}

TEST(FusionFission, RunReturnsExactlyKParts) {
  const auto g = test_graph();
  FusionFissionOptions opt;
  opt.seed = 5;
  FusionFission ff(g, 6, opt);
  const auto res = ff.run(StopCondition::after_steps(3000));
  ffp::testing::expect_valid_partition(res.best, 6);
  EXPECT_NEAR(objective(opt.objective).evaluate(res.best), res.best_value,
              1e-7);
}

TEST(FusionFission, VertexConservationThroughout) {
  // Every vertex stays assigned to exactly one part — guaranteed by the
  // Partition invariants, revalidated on the result.
  const auto g = make_torus(8, 8);
  FusionFissionOptions opt;
  opt.seed = 7;
  FusionFission ff(g, 4, opt);
  const auto res = ff.run(StopCondition::after_steps(2000));
  int total = 0;
  for (int q : res.best.nonempty_parts()) total += res.best.part_size(q);
  EXPECT_EQ(total, g.num_vertices());
}

TEST(FusionFission, ImprovesOverPercolation) {
  const auto g = test_graph();
  const auto base = percolation_partition(g, 6, {});
  const double base_value =
      objective(ObjectiveKind::MinMaxCut).evaluate(base);
  FusionFissionOptions opt;
  opt.seed = 9;
  FusionFission ff(g, 6, opt);
  const auto res = ff.run(StopCondition::after_steps(12000));
  EXPECT_LT(res.best_value, base_value);
}

TEST(FusionFission, TracksBestByPartCount) {
  const auto g = test_graph();
  FusionFissionOptions opt;
  opt.seed = 11;
  FusionFission ff(g, 6, opt);
  const auto res = ff.run(StopCondition::after_steps(6000));
  EXPECT_FALSE(res.best_by_part_count.empty());
  // The target count must have been visited, and typically neighbors too
  // (the paper: good solutions from k−5 to k+6).
  EXPECT_TRUE(res.best_by_part_count.count(6) == 1);
  EXPECT_GE(res.best_by_part_count.size(), 2u);
}

TEST(FusionFission, CountsFusionsAndFissions) {
  const auto g = test_graph();
  FusionFissionOptions opt;
  opt.seed = 13;
  FusionFission ff(g, 6, opt);
  const auto res = ff.run(StopCondition::after_steps(4000));
  EXPECT_GT(res.fusions, 0);
  EXPECT_GT(res.fissions, 0);
  EXPECT_GT(res.steps, 0);
}

TEST(FusionFission, ReheatsWhenFrozen) {
  const auto g = test_graph();
  FusionFissionOptions opt;
  opt.seed = 15;
  opt.nbt = 50;  // freeze quickly
  FusionFission ff(g, 6, opt);
  const auto res = ff.run(StopCondition::after_steps(2000));
  EXPECT_GT(res.reheats, 0);
}

TEST(FusionFission, DeterministicForSeed) {
  const auto g = make_grid2d(7, 7);
  FusionFissionOptions opt;
  opt.seed = 17;
  FusionFission a(g, 4, opt), b(g, 4, opt);
  const auto ra = a.run(StopCondition::after_steps(3000));
  const auto rb = b.run(StopCondition::after_steps(3000));
  EXPECT_DOUBLE_EQ(ra.best_value, rb.best_value);
  EXPECT_EQ(ra.fusions, rb.fusions);
  EXPECT_EQ(ra.fissions, rb.fissions);
}

TEST(FusionFission, LawsOffAblationStillWorks) {
  const auto g = test_graph();
  FusionFissionOptions opt;
  opt.use_laws = false;
  opt.seed = 19;
  FusionFission ff(g, 6, opt);
  const auto res = ff.run(StopCondition::after_steps(3000));
  ffp::testing::expect_valid_partition(res.best, 6);
  EXPECT_EQ(res.ejections, 0);  // no laws → no ejections
}

TEST(FusionFission, ScalingAblationsWork) {
  const auto g = test_graph();
  for (auto scaling : {ScalingKind::BindingEnergy, ScalingKind::Linear,
                       ScalingKind::Identity}) {
    FusionFissionOptions opt;
    opt.scaling = scaling;
    opt.seed = 21;
    FusionFission ff(g, 5, opt);
    const auto res = ff.run(StopCondition::after_steps(2000));
    ffp::testing::expect_valid_partition(res.best, 5);
  }
}

TEST(FusionFission, RandomFissionAblation) {
  const auto g = test_graph();
  FusionFissionOptions opt;
  opt.percolation_fission = false;
  opt.seed = 23;
  FusionFission ff(g, 5, opt);
  const auto res = ff.run(StopCondition::after_steps(2000));
  ffp::testing::expect_valid_partition(res.best, 5);
}

TEST(FusionFission, WorksPerObjective) {
  const auto g = test_graph();
  for (auto kind : {ObjectiveKind::Cut, ObjectiveKind::NormalizedCut,
                    ObjectiveKind::MinMaxCut}) {
    FusionFissionOptions opt;
    opt.objective = kind;
    opt.seed = 25;
    FusionFission ff(g, 5, opt);
    const auto res = ff.run(StopCondition::after_steps(2500));
    ffp::testing::expect_valid_partition(res.best, 5);
    EXPECT_TRUE(std::isfinite(res.best_value)) << objective_name(kind);
  }
}

TEST(FusionFission, RecorderTracksTargetKImprovements) {
  const auto g = test_graph();
  FusionFissionOptions opt;
  opt.seed = 27;
  FusionFission ff(g, 6, opt);
  AnytimeRecorder rec;
  const auto res = ff.run(StopCondition::after_steps(8000), &rec);
  ASSERT_GE(rec.points().size(), 1u);
  for (std::size_t i = 1; i < rec.points().size(); ++i) {
    EXPECT_LE(rec.points()[i].best_value, rec.points()[i - 1].best_value);
  }
  EXPECT_NEAR(rec.points().back().best_value, res.best_value, 1e-9);
}

TEST(FusionFission, SmallGraphEdgeCases) {
  const auto g = make_path(6);
  FusionFissionOptions opt;
  opt.seed = 29;
  FusionFission ff(g, 2, opt);
  const auto res = ff.run(StopCondition::after_steps(800));
  ffp::testing::expect_valid_partition(res.best, 2);
}

TEST(FusionFission, RejectsBadConfiguration) {
  const auto g = make_path(8);
  FusionFissionOptions opt;
  EXPECT_THROW(FusionFission(g, 1, opt), Error);
  EXPECT_THROW(FusionFission(g, 9, opt), Error);
  opt.tmin = opt.tmax;
  EXPECT_THROW(FusionFission(g, 2, opt), Error);
  opt = {};
  opt.nbt = 0;
  EXPECT_THROW(FusionFission(g, 2, opt), Error);
}

}  // namespace
}  // namespace ffp
