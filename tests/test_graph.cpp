#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ffp {
namespace {

Graph triangle() {
  const std::vector<WeightedEdge> edges = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 3.0}};
  return Graph::from_edges(3, edges);
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 0.0);
}

TEST(Graph, SingleVertexNoEdges) {
  const Graph g = Graph::from_edges(1, {});
  EXPECT_EQ(g.num_vertices(), 1);
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 0.0);
  EXPECT_DOUBLE_EQ(g.vertex_weight(0), 1.0);
}

TEST(Graph, TriangleStructure) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_arcs(), 6);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 6.0);
  EXPECT_DOUBLE_EQ(g.max_edge_weight(), 3.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 4.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 3.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(2), 5.0);
}

TEST(Graph, NeighborsSortedAscending) {
  const std::vector<WeightedEdge> edges = {{0, 3, 1}, {0, 1, 1}, {0, 2, 1}};
  const Graph g = Graph::from_edges(4, edges);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1);
  EXPECT_EQ(nbrs[1], 2);
  EXPECT_EQ(nbrs[2], 3);
}

TEST(Graph, NeighborWeightsAligned) {
  const Graph g = triangle();
  const auto nbrs = g.neighbors(2);
  const auto ws = g.neighbor_weights(2);
  ASSERT_EQ(nbrs.size(), 2u);
  // Neighbors of 2 sorted: 0 (w=3), 1 (w=2).
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_DOUBLE_EQ(ws[0], 3.0);
  EXPECT_EQ(nbrs[1], 1);
  EXPECT_DOUBLE_EQ(ws[1], 2.0);
}

TEST(Graph, ParallelEdgesMerge) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1.0}, {1, 0, 2.5}, {0, 1, 0.5}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 4.0);
}

TEST(Graph, EdgeWeightLookup) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 3.0);
}

TEST(Graph, HasEdge) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1.0}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(Graph, VertexWeights) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1.0}};
  const Graph g = Graph::from_edges(2, edges, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(g.vertex_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(g.vertex_weight(1), 3.0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 5.0);
}

TEST(Graph, DefaultVertexWeightsAreOne) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 3.0);
}

TEST(Graph, ZeroWeightEdgeAllowed) {
  const std::vector<WeightedEdge> edges = {{0, 1, 0.0}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 0.0);
}

TEST(Graph, RejectsSelfLoop) {
  const std::vector<WeightedEdge> edges = {{1, 1, 1.0}};
  EXPECT_THROW(Graph::from_edges(2, edges), Error);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  const std::vector<WeightedEdge> edges = {{0, 5, 1.0}};
  EXPECT_THROW(Graph::from_edges(2, edges), Error);
  const std::vector<WeightedEdge> neg = {{-1, 0, 1.0}};
  EXPECT_THROW(Graph::from_edges(2, neg), Error);
}

TEST(Graph, RejectsNegativeWeight) {
  const std::vector<WeightedEdge> edges = {{0, 1, -1.0}};
  EXPECT_THROW(Graph::from_edges(2, edges), Error);
}

TEST(Graph, RejectsBadVertexWeights) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1.0}};
  EXPECT_THROW(Graph::from_edges(2, edges, {1.0}), Error);       // wrong size
  EXPECT_THROW(Graph::from_edges(2, edges, {1.0, 0.0}), Error);  // zero weight
}

TEST(Graph, CsrViewsConsistent) {
  const Graph g = triangle();
  const auto xadj = g.xadj();
  ASSERT_EQ(xadj.size(), 4u);
  EXPECT_EQ(xadj[0], 0);
  EXPECT_EQ(xadj[3], 6);
  EXPECT_EQ(g.adj().size(), 6u);
  EXPECT_EQ(g.arc_weights().size(), 6u);
}

TEST(Graph, SummaryMentionsCounts) {
  const std::string s = triangle().summary();
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("m=3"), std::string::npos);
}

}  // namespace
}  // namespace ffp
