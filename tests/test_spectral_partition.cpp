#include "spectral/spectral_partition.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/balance.hpp"
#include "partition/objectives.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

TEST(MedianSplit, BalancesUnitWeights) {
  const auto g = make_path(10);
  std::vector<double> values(10);
  for (int i = 0; i < 10; ++i) values[static_cast<std::size_t>(i)] = i;
  const auto side = median_split(g, values);
  EXPECT_EQ(std::count(side.begin(), side.end(), 0), 5);
  // Lower values on side 0.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(side[static_cast<std::size_t>(i)], 0);
}

TEST(MedianSplit, RespectsVertexWeights) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {1, 2, 1}};
  const auto g = Graph::from_edges(3, edges, {10.0, 1.0, 1.0});
  std::vector<double> values = {0.0, 1.0, 2.0};
  const auto side = median_split(g, values);
  // The heavy vertex alone is already half the weight.
  EXPECT_EQ(side[0], 0);
  EXPECT_EQ(side[1], 1);
  EXPECT_EQ(side[2], 1);
}

TEST(MedianSplit, BothSidesNonEmpty) {
  const auto g = make_complete(5);
  const std::vector<double> same(5, 1.0);  // all-equal values
  const auto side = median_split(g, same);
  EXPECT_GT(std::count(side.begin(), side.end(), 0), 0);
  EXPECT_GT(std::count(side.begin(), side.end(), 1), 0);
}

TEST(SignSection, ProducesRequestedCells) {
  const auto g = make_grid2d(8, 8);
  SpectralOptions opt;
  FiedlerOptions fopt;
  fopt.count = 2;
  const auto fres = fiedler_vectors(g, fopt);
  ASSERT_GE(fres.vectors.size(), 2u);
  const auto cells = sign_section(
      g, std::span<const std::vector<double>>(fres.vectors.data(), 2), 1.3, 9);
  const auto p = Partition::from_assignment(g, cells, 4);
  EXPECT_EQ(p.num_nonempty_parts(), 4);
  EXPECT_LE(imbalance(p, 4), 1.5);
}

TEST(SpectralPartition, BisectionFindsBarbellBridge) {
  const auto g = make_barbell(10, 2);
  SpectralOptions opt;
  const auto p = spectral_partition(g, 2, opt);
  ffp::testing::expect_valid_partition(p, 2);
  // Optimal bisection cuts one bridge edge.
  EXPECT_LE(p.edge_cut(), 2.0);
}

TEST(SpectralPartition, GridBisectionIsNearOptimal) {
  const auto g = make_grid2d(8, 8);
  const auto p = spectral_partition(g, 2, {});
  ffp::testing::expect_valid_partition(p, 2);
  // Optimal straight cut costs 8.
  EXPECT_LE(p.edge_cut(), 10.0);
  EXPECT_LE(imbalance(p, 2), 1.05);
}

TEST(SpectralPartition, K8OnGrid) {
  const auto g = make_grid2d(12, 12);
  SpectralOptions opt;
  const auto p = spectral_partition(g, 8, opt);
  ffp::testing::expect_valid_partition(p, 8);
  EXPECT_LE(imbalance(p, 8), 1.35);
}

TEST(SpectralPartition, OctasectionReaches32) {
  const auto g = make_grid2d(16, 16);
  SpectralOptions opt;
  opt.arity = SectionArity::Octasection;
  const auto p = spectral_partition(g, 32, opt);
  ffp::testing::expect_valid_partition(p, 32);
}

TEST(SpectralPartition, KlRefinementNeverHurtsCut) {
  const auto g = with_random_weights(make_grid2d(10, 10), 1.0, 5.0, 17);
  SpectralOptions plain;
  plain.kl_refine = false;
  SpectralOptions kl;
  kl.kl_refine = true;
  const auto a = spectral_partition(g, 4, plain);
  const auto b = spectral_partition(g, 4, kl);
  EXPECT_LE(b.edge_cut(), a.edge_cut() * 1.05 + 1e-9);
}

TEST(SpectralPartition, RqiEngineWorksEndToEnd) {
  const auto g = make_grid2d(12, 10);
  SpectralOptions opt;
  opt.engine = FiedlerEngine::MultilevelRqi;
  const auto p = spectral_partition(g, 4, opt);
  ffp::testing::expect_valid_partition(p, 4);
  EXPECT_LE(imbalance(p, 4), 1.4);
}

TEST(SpectralPartition, RejectsNonPowerOfTwoK) {
  const auto g = make_grid2d(6, 6);
  EXPECT_THROW(spectral_partition(g, 3, {}), Error);
  EXPECT_THROW(spectral_partition(g, 12, {}), Error);
}

TEST(SpectralPartition, KEqualsOneIsWholeGraph) {
  const auto g = make_grid2d(4, 4);
  const auto p = spectral_partition(g, 1, {});
  EXPECT_EQ(p.num_nonempty_parts(), 1);
  EXPECT_DOUBLE_EQ(p.edge_cut(), 0.0);
}

TEST(SpectralPartition, RejectsKLargerThanN) {
  const auto g = make_path(3);
  EXPECT_THROW(spectral_partition(g, 4, {}), Error);
}

TEST(SpectralPartition, DeterministicForSeed) {
  const auto g = make_random_geometric(120, 0.18, 5);
  SpectralOptions opt;
  opt.seed = 33;
  const auto a = spectral_partition(g, 4, opt);
  const auto b = spectral_partition(g, 4, opt);
  EXPECT_TRUE(std::equal(a.assignment().begin(), a.assignment().end(),
                         b.assignment().begin()));
}

}  // namespace
}  // namespace ffp
