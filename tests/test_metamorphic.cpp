// Metamorphic properties: transformations of the input with known effects
// on the output. These catch silent unit/convention bugs that example-based
// tests miss.
#include <gtest/gtest.h>

#include "core/fusion_fission.hpp"
#include "graph/generators.hpp"
#include "multilevel/multilevel.hpp"
#include "partition/objectives.hpp"
#include "spectral/spectral_partition.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

/// Scale every edge weight by c.
Graph scale_weights(const Graph& g, double c) {
  std::vector<WeightedEdge> edges;
  std::vector<Weight> vw(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    vw[static_cast<std::size_t>(v)] = g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > v) edges.push_back({v, nbrs[i], ws[i] * c});
    }
  }
  return Graph::from_edges(g.num_vertices(), edges, std::move(vw));
}

TEST(Metamorphic, CutScalesLinearlyWithWeights) {
  const auto g = with_random_weights(make_grid2d(6, 6), 1.0, 5.0, 3);
  const auto g2 = scale_weights(g, 3.5);
  Rng rng(5);
  std::vector<int> assign(36);
  for (auto& a : assign) a = static_cast<int>(rng.below(4));
  const auto p = Partition::from_assignment(g, assign, 4);
  const auto p2 = Partition::from_assignment(g2, assign, 4);
  EXPECT_NEAR(objective(ObjectiveKind::Cut).evaluate(p2),
              3.5 * objective(ObjectiveKind::Cut).evaluate(p), 1e-9);
}

TEST(Metamorphic, RatioCriteriaInvariantUnderWeightScaling) {
  // Ncut and Mcut are ratios of weights: scaling all edges leaves them
  // unchanged — as long as no part trips the (absolute-scaled)
  // zero-denominator penalty, so use contiguous row blocks where every
  // part has internal edges.
  const auto g = with_random_weights(make_torus(6, 6), 1.0, 9.0, 7);
  const auto g2 = scale_weights(g, 12.0);
  std::vector<int> assign(36);
  for (int i = 0; i < 36; ++i) assign[static_cast<std::size_t>(i)] = i / 12;
  const auto p = Partition::from_assignment(g, assign, 3);
  const auto p2 = Partition::from_assignment(g2, assign, 3);
  for (auto kind : {ObjectiveKind::NormalizedCut, ObjectiveKind::MinMaxCut}) {
    EXPECT_NEAR(objective(kind).evaluate(p2), objective(kind).evaluate(p),
                1e-9)
        << objective_name(kind);
  }
}

TEST(Metamorphic, MultilevelQualityStableUnderWeightScaling) {
  // The multilevel pipeline works on ratios of gains: scaling weights must
  // leave the partition's *relative* quality intact (same assignment is not
  // guaranteed — tie-breaks can flip — but the scaled cut must match the
  // rescaled original within a small factor).
  const auto g = with_random_weights(make_grid2d(12, 12), 1.0, 7.0, 11);
  const auto g2 = scale_weights(g, 100.0);
  MultilevelOptions opt;
  opt.seed = 13;
  const auto p = multilevel_partition(g, 6, opt);
  const auto p2 = multilevel_partition(g2, 6, opt);
  EXPECT_LT(p2.edge_cut(), 100.0 * p.edge_cut() * 1.25 + 1e-9);
  EXPECT_GT(p2.edge_cut(), 100.0 * p.edge_cut() * 0.75 - 1e-9);
}

TEST(Metamorphic, DuplicatedGraphDoublesCut) {
  // Two disjoint copies partitioned into 2k parts can achieve exactly twice
  // the cut of one copy at k parts; multilevel should stay in that regime.
  const auto g = make_grid2d(8, 8);
  std::vector<WeightedEdge> edges;
  for (VertexId v = 0; v < 64; ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (u > v) {
        edges.push_back({v, u, 1.0});
        edges.push_back({v + 64, u + 64, 1.0});
      }
    }
  }
  const auto doubled = Graph::from_edges(128, edges);
  MultilevelOptions opt;
  opt.seed = 15;
  const auto p1 = multilevel_partition(g, 4, opt);
  const auto p2 = multilevel_partition(doubled, 8, opt);
  EXPECT_LE(p2.edge_cut(), 2.0 * p1.edge_cut() * 1.5);
}

TEST(Metamorphic, ObjectivePermutationInvariance) {
  // Renaming part ids must not change any criterion.
  const auto g = with_random_weights(make_grid2d(7, 7), 1.0, 4.0, 17);
  Rng rng(19);
  std::vector<int> assign(49);
  for (auto& a : assign) a = static_cast<int>(rng.below(5));
  std::vector<int> renamed(assign.size());
  const int perm[5] = {3, 0, 4, 1, 2};
  for (std::size_t i = 0; i < assign.size(); ++i) {
    renamed[i] = perm[assign[i]];
  }
  const auto p = Partition::from_assignment(g, assign, 5);
  const auto q = Partition::from_assignment(g, renamed, 5);
  for (auto kind : {ObjectiveKind::Cut, ObjectiveKind::NormalizedCut,
                    ObjectiveKind::MinMaxCut, ObjectiveKind::RatioCut}) {
    EXPECT_NEAR(objective(kind).evaluate(p), objective(kind).evaluate(q),
                1e-9)
        << objective_name(kind);
  }
}

TEST(Metamorphic, FusionFissionQualityStableUnderWeightScale) {
  // FF's search decisions are ratio-driven for Mcut, so scaled weights
  // should land in the same quality regime. (Bit-identical trajectories
  // are NOT expected: the zero-denominator penalty is absolute-scaled, so
  // decisions made while singleton atoms exist can legitimately differ.)
  const auto g = with_random_weights(make_grid2d(7, 7), 1.0, 6.0, 21);
  const auto g2 = scale_weights(g, 10.0);
  FusionFissionOptions opt;
  opt.objective = ObjectiveKind::MinMaxCut;
  opt.seed = 23;
  FusionFission a(g, 4, opt), b(g2, 4, opt);
  const auto ra = a.run(StopCondition::after_steps(1200));
  const auto rb = b.run(StopCondition::after_steps(1200));
  EXPECT_NEAR(ra.best_value, rb.best_value,
              0.2 * std::max(ra.best_value, rb.best_value));
}

TEST(FailureInjection, ZeroWeightEdgesEverywhere) {
  // All-zero weights: ratio criteria see zero denominators; nothing should
  // crash or return NaN.
  const auto base = make_grid2d(5, 5);
  std::vector<WeightedEdge> edges;
  for (VertexId v = 0; v < 25; ++v) {
    for (VertexId u : base.neighbors(v)) {
      if (u > v) edges.push_back({v, u, 0.0});
    }
  }
  const auto g = Graph::from_edges(25, edges);
  Rng rng(25);
  std::vector<int> assign(25);
  for (auto& a : assign) a = static_cast<int>(rng.below(3));
  const auto p = Partition::from_assignment(g, assign, 3);
  for (auto kind : {ObjectiveKind::Cut, ObjectiveKind::NormalizedCut,
                    ObjectiveKind::MinMaxCut, ObjectiveKind::RatioCut}) {
    const double v = objective(kind).evaluate(p);
    EXPECT_TRUE(std::isfinite(v)) << objective_name(kind);
  }
}

TEST(FailureInjection, StarGraphSurvivesEveryPartitioner) {
  // A star defeats matching-based coarsening and percolation spreading;
  // everything must still terminate with a valid partition.
  const auto g = make_star(40);
  const auto ml = multilevel_partition(g, 4, {});
  ffp::testing::expect_valid_partition(ml, 4);

  FusionFissionOptions opt;
  opt.seed = 27;
  FusionFission ff(g, 4, opt);
  const auto res = ff.run(StopCondition::after_steps(800));
  ffp::testing::expect_valid_partition(res.best, 4);
}

TEST(FailureInjection, SpectralOnTinyGraphs) {
  EXPECT_NO_THROW(spectral_partition(make_path(2), 2, {}));
  EXPECT_NO_THROW(spectral_partition(make_path(4), 4, {}));
  EXPECT_NO_THROW(spectral_partition(make_complete(3), 2, {}));
}

}  // namespace
}  // namespace ffp
