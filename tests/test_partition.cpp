#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace ffp {
namespace {

TEST(Partition, InitialAllInPartZero) {
  const auto g = make_grid2d(3, 3);
  Partition p(g, 4);
  EXPECT_EQ(p.num_parts(), 4);
  EXPECT_EQ(p.num_nonempty_parts(), 1);
  EXPECT_EQ(p.part_size(0), 9);
  EXPECT_DOUBLE_EQ(p.part_cut(0), 0.0);
  EXPECT_DOUBLE_EQ(p.total_cut_pairs(), 0.0);
}

TEST(Partition, FromAssignmentComputesStats) {
  // Path 0-1-2-3, split {0,1} | {2,3}: one cut edge (1,2).
  const auto g = make_path(4);
  const std::vector<int> assign = {0, 0, 1, 1};
  const auto p = Partition::from_assignment(g, assign);
  EXPECT_EQ(p.num_parts(), 2);
  EXPECT_DOUBLE_EQ(p.edge_cut(), 1.0);
  EXPECT_DOUBLE_EQ(p.total_cut_pairs(), 2.0);
  EXPECT_DOUBLE_EQ(p.part_cut(0), 1.0);
  EXPECT_DOUBLE_EQ(p.part_internal(0), 2.0);  // ordered pairs: edge (0,1) x2
}

TEST(Partition, FromAssignmentDeducesK) {
  const auto g = make_path(3);
  const std::vector<int> assign = {0, 2, 2};
  const auto p = Partition::from_assignment(g, assign);
  EXPECT_EQ(p.num_parts(), 3);
  EXPECT_EQ(p.num_nonempty_parts(), 2);
  EXPECT_EQ(p.part_size(1), 0);
}

TEST(Partition, FromAssignmentRejectsOutOfRange) {
  const auto g = make_path(3);
  const std::vector<int> assign = {0, 1, 5};
  EXPECT_THROW(Partition::from_assignment(g, assign, 2), Error);
}

TEST(Partition, SingletonsOnePartPerVertex) {
  const auto g = make_cycle(5);
  const auto p = Partition::singletons(g);
  EXPECT_EQ(p.num_nonempty_parts(), 5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(p.part_size(p.part_of(v)), 1);
    EXPECT_DOUBLE_EQ(p.part_internal(p.part_of(v)), 0.0);
    EXPECT_DOUBLE_EQ(p.part_cut(p.part_of(v)), 2.0);
  }
  EXPECT_DOUBLE_EQ(p.edge_cut(), 5.0);
}

TEST(Partition, MoveUpdatesCutIncrementally) {
  const auto g = make_path(4);
  auto p = Partition::from_assignment(g, std::vector<int>{0, 0, 1, 1});
  p.move(1, 1);  // now {0} | {1,2,3}
  EXPECT_DOUBLE_EQ(p.edge_cut(), 1.0);
  EXPECT_EQ(p.part_size(0), 1);
  EXPECT_EQ(p.part_size(1), 3);
  EXPECT_NO_THROW(p.validate());
}

TEST(Partition, MoveToSamePartIsNoop) {
  const auto g = make_path(4);
  auto p = Partition::from_assignment(g, std::vector<int>{0, 0, 1, 1});
  const double cut = p.edge_cut();
  p.move(0, 0);
  EXPECT_DOUBLE_EQ(p.edge_cut(), cut);
}

TEST(Partition, EmptyingPartUpdatesNonempty) {
  const auto g = make_path(3);
  auto p = Partition::from_assignment(g, std::vector<int>{0, 1, 1});
  EXPECT_EQ(p.num_nonempty_parts(), 2);
  p.move(0, 1);
  EXPECT_EQ(p.num_nonempty_parts(), 1);
  EXPECT_EQ(p.part_size(0), 0);
  EXPECT_DOUBLE_EQ(p.part_cut(0), 0.0);
  EXPECT_DOUBLE_EQ(p.edge_cut(), 0.0);
  p.move(2, 0);  // revive the empty slot
  EXPECT_EQ(p.num_nonempty_parts(), 2);
  EXPECT_NO_THROW(p.validate());
}

TEST(Partition, MakePartAddsEmptySlot) {
  const auto g = make_path(3);
  auto p = Partition::from_assignment(g, std::vector<int>{0, 0, 0});
  const int fresh = p.make_part();
  EXPECT_EQ(fresh, 1);
  EXPECT_EQ(p.num_parts(), 2);
  EXPECT_EQ(p.part_size(fresh), 0);
  p.move(2, fresh);
  EXPECT_EQ(p.part_size(fresh), 1);
  EXPECT_NO_THROW(p.validate());
}

TEST(Partition, ExtDegreeCountsTargetPartOnly) {
  const auto g = make_complete(4);
  auto p = Partition::from_assignment(g, std::vector<int>{0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(p.ext_degree(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(p.ext_degree(0, 0), 1.0);  // own part: neighbor 1
}

TEST(Partition, MoveProfileMatchesExtDegrees) {
  const auto g = make_grid2d(4, 4);
  auto p = Partition::from_assignment(
      g, std::vector<int>{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (int t = 0; t < 4; ++t) {
      if (t == p.part_of(v)) continue;  // ext_to undefined for own part
      const auto prof = p.move_profile(v, t);
      EXPECT_DOUBLE_EQ(prof.ext_from, p.ext_degree(v, p.part_of(v)));
      EXPECT_DOUBLE_EQ(prof.ext_to, p.ext_degree(v, t));
    }
  }
}

TEST(Partition, ConnectionsMatchBruteForce) {
  const auto g = with_random_weights(make_grid2d(5, 5), 1.0, 3.0, 6);
  std::vector<int> assign(25);
  Rng rng(12);
  for (auto& a : assign) a = static_cast<int>(rng.below(4));
  const auto p = Partition::from_assignment(g, assign, 4);
  for (int q : p.nonempty_parts()) {
    std::vector<std::pair<int, Weight>> conns;
    p.connections(q, conns);
    // Brute force.
    std::vector<Weight> expect(4, 0.0);
    for (VertexId v : p.members(q)) {
      const auto nbrs = g.neighbors(v);
      const auto ws = g.neighbor_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (p.part_of(nbrs[i]) != q) {
          expect[static_cast<std::size_t>(p.part_of(nbrs[i]))] += ws[i];
        }
      }
    }
    std::vector<Weight> got(4, 0.0);
    for (const auto& [b, w] : conns) {
      EXPECT_GT(w, 0.0);
      got[static_cast<std::size_t>(b)] = w;
    }
    for (int b = 0; b < 4; ++b) {
      EXPECT_NEAR(got[static_cast<std::size_t>(b)],
                  expect[static_cast<std::size_t>(b)], 1e-9);
    }
  }
}

TEST(Partition, CompactRenumbersNonempty) {
  const auto g = make_path(4);
  auto p = Partition::from_assignment(g, std::vector<int>{0, 3, 3, 0}, 6);
  EXPECT_EQ(p.num_parts(), 6);
  const auto remap = p.compact();
  EXPECT_EQ(p.num_parts(), 2);
  EXPECT_EQ(p.num_nonempty_parts(), 2);
  EXPECT_EQ(remap[0], 0);
  EXPECT_EQ(remap[3], 1);
  EXPECT_EQ(remap[1], -1);
  EXPECT_NO_THROW(p.validate());
}

// Property: a long random move sequence keeps every incremental statistic
// equal to a from-scratch recomputation, across graph families.
class PartitionMoveProperty
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionMoveProperty, RandomMovesStayConsistent) {
  const auto cases = testing::property_graphs();
  const auto& tc = cases[GetParam()];
  const Graph& g = tc.graph;
  const int k = 4;
  Rng rng(1000 + GetParam());

  std::vector<int> assign(static_cast<std::size_t>(g.num_vertices()));
  for (auto& a : assign) a = static_cast<int>(rng.below(k));
  auto p = Partition::from_assignment(g, assign, k);

  for (int step = 0; step < 400; ++step) {
    const auto v = static_cast<VertexId>(
        rng.below(static_cast<std::uint64_t>(g.num_vertices())));
    const int t = static_cast<int>(rng.below(k));
    p.move(v, t);
    if (step % 97 == 0) {
      ASSERT_NO_THROW(p.validate()) << tc.name;
    }
  }
  ASSERT_NO_THROW(p.validate()) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphFamilies, PartitionMoveProperty,
    ::testing::Range<std::size_t>(0, 10),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return ffp::testing::property_graphs()[info.param].name;
    });

}  // namespace
}  // namespace ffp
