// End-to-end integration: the paper's pipeline on a reduced ATC instance —
// percolation initializes SA/ACO, FF self-initializes, specific tools
// (spectral/multilevel) provide the fast baselines, and the qualitative
// relationships the paper reports must hold.
#include <gtest/gtest.h>

#include "atc/core_area.hpp"
#include "benchlib/methods.hpp"
#include "core/fusion_fission.hpp"
#include "graph/io.hpp"
#include "metaheuristics/annealing.hpp"
#include "metaheuristics/percolation.hpp"
#include "multilevel/multilevel.hpp"
#include "partition/balance.hpp"
#include "spectral/linear_partition.hpp"
#include "spectral/spectral_partition.hpp"
#include "test_support.hpp"

#include <sstream>

namespace ffp {
namespace {

struct Instance {
  Graph graph;
  int k = 8;
};

const Instance& instance() {
  static const Instance inst = [] {
    CoreAreaOptions opt;
    opt.n_sectors = 190;
    opt.n_edges = 760;
    opt.seed = 2006;
    return Instance{make_core_area_graph(opt).graph, 8};
  }();
  return inst;
}

TEST(Integration, SpectralBeatsLinearOnCutAtPaperScale) {
  // At the paper's scale (762 sectors, k = 32) the Table-1 ordering
  // Linear > Spectral on Cut is clear-cut; tiny instances can flip it
  // because the spatially ordered ids make Linear surprisingly strong.
  const auto core = make_core_area_graph();
  const auto methods = table1_methods();
  MethodContext ctx;
  ctx.k = 32;
  ctx.seed = 1;
  const auto spectral =
      method_by_name(methods, "Spectral (Lanc, Bi)").run(core.graph, ctx);
  const auto linear =
      method_by_name(methods, "Linear (Bi)").run(core.graph, ctx);
  EXPECT_LT(spectral.edge_cut(), linear.edge_cut());
}

TEST(Integration, MultilevelCompetitiveWithSpectral) {
  const auto& [g, k] = instance();
  const auto ml = multilevel_partition(g, k, {});
  const auto sp = spectral_partition(g, k, {});
  // The paper has them within a few percent of each other on Cut.
  EXPECT_LT(ml.edge_cut(), sp.edge_cut() * 1.3);
}

TEST(Integration, FusionFissionBeatsSpecificToolsOnMcut) {
  // The paper's headline: metaheuristics (FF first) win on Mcut.
  const auto& [g, k] = instance();
  const auto ml = multilevel_partition(g, k, {});
  const double ml_mcut = objective(ObjectiveKind::MinMaxCut).evaluate(ml);

  FusionFissionOptions opt;
  opt.objective = ObjectiveKind::MinMaxCut;
  opt.seed = 1;
  FusionFission ff(g, k, opt);
  const auto res = ff.run(StopCondition::after_millis(2500));
  EXPECT_LT(res.best_value, ml_mcut);
}

TEST(Integration, AnnealingImprovesPercolationSubstantially) {
  const auto& [g, k] = instance();
  const auto init = percolation_partition(g, k, {});
  const double init_mcut =
      objective(ObjectiveKind::MinMaxCut).evaluate(init);
  AnnealingOptions opt;
  opt.objective = ObjectiveKind::MinMaxCut;
  opt.seed = 2;
  SimulatedAnnealing sa(g, k, opt);
  const auto res = sa.run(init, StopCondition::after_millis(1500));
  EXPECT_LT(res.best_value, init_mcut * 0.8);
}

TEST(Integration, FusionFissionGoodAcrossNeighboringK) {
  // §6: "if fusion fission returns a 32-partition, it returns good
  // solutions from 27 to 38 partitions" — scaled to our k=8 instance.
  const auto& [g, k] = instance();
  FusionFissionOptions opt;
  opt.objective = ObjectiveKind::MinMaxCut;
  opt.seed = 3;
  FusionFission ff(g, k, opt);
  const auto res = ff.run(StopCondition::after_millis(2500));
  int neighbors_seen = 0;
  for (int kk = k - 2; kk <= k + 2; ++kk) {
    if (res.best_by_part_count.count(kk) > 0) ++neighbors_seen;
  }
  EXPECT_GE(neighbors_seen, 3);
}

TEST(Integration, PartitionRoundTripsThroughChacoFiles) {
  const auto& [g, k] = instance();
  const auto p = multilevel_partition(g, k, {});
  std::ostringstream graph_out, part_out;
  write_chaco(g, graph_out);
  write_partition(p.assignment(), part_out);

  std::istringstream graph_in(graph_out.str());
  std::istringstream part_in(part_out.str());
  const auto g2 = read_chaco(graph_in);
  const auto assign2 = read_partition(part_in);
  const auto p2 = Partition::from_assignment(g2, assign2, k);
  EXPECT_NEAR(p2.edge_cut(), p.edge_cut(), 1e-6);
  EXPECT_NEAR(objective(ObjectiveKind::MinMaxCut).evaluate(p2),
              objective(ObjectiveKind::MinMaxCut).evaluate(p), 1e-6);
}

TEST(Integration, AllMethodsBeatRandomBaseline) {
  const auto& [g, k] = instance();
  // Random baseline cut expectation: (1 − 1/k) of total weight.
  const double random_cut_pairs =
      2.0 * g.total_edge_weight() * (1.0 - 1.0 / k);
  for (const auto& m : table1_methods()) {
    MethodContext ctx;
    ctx.k = k;
    ctx.objective = ObjectiveKind::Cut;
    ctx.budget_ms = 400.0;
    ctx.seed = 4;
    const auto p = m.run(g, ctx);
    SCOPED_TRACE(m.name);
    EXPECT_LT(p.total_cut_pairs(), random_cut_pairs);
  }
}

TEST(Integration, MetaheuristicsTolerateDisconnectedGraphs) {
  // Failure injection: two islands; everything must still terminate with a
  // valid k-partition.
  std::vector<WeightedEdge> edges;
  const auto grid = make_grid2d(6, 6);
  for (VertexId v = 0; v < 36; ++v) {
    for (VertexId u : grid.neighbors(v)) {
      if (u > v) {
        edges.push_back({v, u, 1.0});
        edges.push_back({v + 36, u + 36, 1.0});
      }
    }
  }
  const auto g = Graph::from_edges(72, edges);

  FusionFissionOptions ffopt;
  ffopt.seed = 5;
  FusionFission ff(g, 4, ffopt);
  const auto ffres = ff.run(StopCondition::after_steps(2500));
  ffp::testing::expect_valid_partition(ffres.best, 4);

  const auto perc = percolation_partition(g, 4, {});
  ffp::testing::expect_valid_partition(perc, 4);

  AnnealingOptions saopt;
  saopt.seed = 6;
  SimulatedAnnealing sa(g, 4, saopt);
  const auto sares = sa.run(perc, StopCondition::after_steps(15000));
  ffp::testing::expect_valid_partition(sares.best, 4);
}

}  // namespace
}  // namespace ffp
