#include "metaheuristics/percolation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "partition/balance.hpp"
#include "partition/objectives.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

TEST(SpreadSeeds, DistinctAndInRange) {
  const auto g = make_grid2d(8, 8);
  Rng rng(3);
  const auto seeds = spread_seeds(g, 7, rng);
  std::set<VertexId> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 7u);
  for (VertexId s : seeds) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 64);
  }
}

TEST(SpreadSeeds, PathSeedsAreSpread) {
  const auto g = make_path(30);
  Rng rng(5);
  const auto seeds = spread_seeds(g, 2, rng);
  EXPECT_GE(std::abs(seeds[0] - seeds[1]), 10);
}

TEST(SpreadSeeds, RejectsTooMany) {
  const auto g = make_path(3);
  Rng rng(7);
  EXPECT_THROW(spread_seeds(g, 4, rng), Error);
}

TEST(Percolate, SeedsKeepTheirColor) {
  const auto g = make_grid2d(6, 6);
  const VertexId seeds[3] = {0, 17, 35};
  const auto assign = percolate(g, std::span<const VertexId>(seeds, 3));
  EXPECT_EQ(assign[0], 0);
  EXPECT_EQ(assign[17], 1);
  EXPECT_EQ(assign[35], 2);
}

TEST(Percolate, CoversEveryVertex) {
  const auto g = make_torus(7, 7);
  const VertexId seeds[4] = {0, 10, 24, 40};
  const auto assign = percolate(g, std::span<const VertexId>(seeds, 4));
  for (int a : assign) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
}

TEST(Percolate, TwoSeedsOnPathSplitInMiddle) {
  const auto g = make_path(20);
  const VertexId seeds[2] = {0, 19};
  const auto assign = percolate(g, std::span<const VertexId>(seeds, 2));
  // Each side claims its half (synchronized dripping).
  EXPECT_EQ(assign[2], 0);
  EXPECT_EQ(assign[17], 1);
  const auto p = Partition::from_assignment(g, assign, 2);
  EXPECT_LE(imbalance(p, 2), 1.25);
}

TEST(Percolate, RejectsDuplicateSeeds) {
  const auto g = make_path(5);
  const VertexId seeds[2] = {1, 1};
  EXPECT_THROW(percolate(g, std::span<const VertexId>(seeds, 2)), Error);
}

TEST(Percolate, DisconnectedGetsRoundRobin) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1.0}};
  const auto g = Graph::from_edges(4, edges);
  const VertexId seeds[2] = {0, 1};
  const auto assign = percolate(g, std::span<const VertexId>(seeds, 2));
  // Vertices 2,3 are unreachable; they still get colors.
  EXPECT_GE(assign[2], 0);
  EXPECT_GE(assign[3], 0);
}

TEST(PercolationPartition, ValidKParts) {
  const auto g = with_random_weights(make_grid2d(10, 10), 1.0, 5.0, 9);
  PercolationOptions opt;
  opt.seed = 10;
  const auto p = percolation_partition(g, 6, opt);
  ffp::testing::expect_valid_partition(p, 6);
}

TEST(PercolationPartition, ReasonableBalanceOnUniformGrid) {
  // Percolation does not enforce balance (it is the paper's weakest row);
  // this guards against pathological collapse, not perfect balance.
  const auto g = make_grid2d(12, 12);
  const auto p = percolation_partition(g, 4, {});
  EXPECT_LE(imbalance(p, 4), 2.5);
}

TEST(PercolationPartition, NoZeroInternalParts) {
  // The starved-part fixup must leave every part with internal weight.
  const auto g = with_random_weights(make_grid2d(9, 9), 0.5, 20.0, 12);
  const auto p = percolation_partition(g, 8, {});
  for (int q : p.nonempty_parts()) {
    if (p.part_size(q) >= 2) {
      EXPECT_GT(p.part_internal(q), 0.0) << "part " << q;
    }
  }
}

TEST(PercolationPartition, DeterministicForSeed) {
  const auto g = make_torus(8, 8);
  PercolationOptions opt;
  opt.seed = 21;
  const auto a = percolation_partition(g, 5, opt);
  const auto b = percolation_partition(g, 5, opt);
  EXPECT_TRUE(std::equal(a.assignment().begin(), a.assignment().end(),
                         b.assignment().begin()));
}

TEST(PercolationBisect, LabelsAreBinaryAndNonEmpty) {
  const auto g = make_grid2d(7, 7);
  std::vector<VertexId> all(49);
  for (VertexId v = 0; v < 49; ++v) all[static_cast<std::size_t>(v)] = v;
  Rng rng(31);
  const auto side = percolation_bisect(g, all, rng);
  ASSERT_EQ(side.size(), 49u);
  EXPECT_GT(std::count(side.begin(), side.end(), 0), 0);
  EXPECT_GT(std::count(side.begin(), side.end(), 1), 0);
}

TEST(PercolationBisect, SubsetOfGraph) {
  const auto g = make_grid2d(8, 8);
  std::vector<VertexId> subset;
  for (VertexId v = 0; v < 32; ++v) subset.push_back(v);
  Rng rng(33);
  const auto side = percolation_bisect(g, subset, rng);
  EXPECT_EQ(side.size(), subset.size());
}

TEST(PercolationBisect, DisconnectedSubsetSplitsByComponent) {
  const auto g = make_path(10);
  // {0,1,2} and {7,8,9} are disconnected inside the induced subgraph.
  const std::vector<VertexId> subset = {0, 1, 2, 7, 8, 9};
  Rng rng(35);
  const auto side = percolation_bisect(g, subset, rng);
  // Components must not be split: 0,1,2 together and 7,8,9 together.
  EXPECT_EQ(side[0], side[1]);
  EXPECT_EQ(side[1], side[2]);
  EXPECT_EQ(side[3], side[4]);
  EXPECT_EQ(side[4], side[5]);
  EXPECT_NE(side[0], side[3]);
}

TEST(PercolationBisect, RejectsTinySubset) {
  const auto g = make_path(5);
  const std::vector<VertexId> one = {2};
  Rng rng(37);
  EXPECT_THROW(percolation_bisect(g, one, rng), Error);
}

TEST(PercolationPartition, HeavyRegionsGetMoreSeeds) {
  // Two cliques joined by a weak path; percolation across the whole graph
  // should not put everything in one part.
  const auto g = make_barbell(15, 3);
  const auto p = percolation_partition(g, 2, {});
  EXPECT_LE(imbalance(p, 2), 1.4);
  // The cut should avoid clique interiors.
  EXPECT_LE(p.edge_cut(), 3.0);
}

}  // namespace
}  // namespace ffp
