#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace ffp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, ComputesAllIndices) {
  ThreadPool pool(4);
  std::vector<int> out(200, 0);
  parallel_for(pool, 200, [&out](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = static_cast<int>(i * 2);
  });
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 2);
  }
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  int touched = 0;
  parallel_for(pool, 0, [&touched](std::int64_t) { ++touched; });
  EXPECT_EQ(touched, 0);
}

TEST(TaskGroup, WaitJoinsOnlyOwnTasks) {
  ThreadPool pool(2);
  std::atomic<int> mine{0}, other{0};
  TaskGroup a(pool), b(pool);
  for (int i = 0; i < 50; ++i) {
    a.submit([&mine] { ++mine; });
    b.submit([&other] { ++other; });
  }
  a.wait();
  EXPECT_EQ(mine.load(), 50);
  b.wait();
  EXPECT_EQ(other.load(), 50);
}

TEST(TaskGroup, WaitOnEmptyGroupReturns) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  EXPECT_NO_THROW(group.wait());
}

TEST(TaskGroup, PropagatesTaskExceptionOnce) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.submit([] { throw std::runtime_error("group task failed"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_NO_THROW(group.wait());
  // The pool itself stays clean: group errors never reach wait_idle.
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(TaskGroup, ErrorInOneGroupDoesNotLeakIntoAnother) {
  ThreadPool pool(2);
  TaskGroup bad(pool), good(pool);
  bad.submit([] { throw std::runtime_error("bad group"); });
  std::atomic<int> count{0};
  good.submit([&count] { ++count; });
  good.wait();
  EXPECT_EQ(count.load(), 1);
  EXPECT_THROW(bad.wait(), std::runtime_error);
}

}  // namespace
}  // namespace ffp
