#include "core/laws.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ffp {
namespace {

TEST(Laws, ChoicesTruncateForTinyAtoms) {
  const LawTable laws(100, 0.05);
  // Fusion of a size-1 atom cannot eject (result must stay non-empty).
  EXPECT_EQ(laws.choices(LawKind::Fusion, 1), 1);
  EXPECT_EQ(laws.choices(LawKind::Fusion, 2), 2);
  EXPECT_EQ(laws.choices(LawKind::Fusion, 4), 4);
  EXPECT_EQ(laws.choices(LawKind::Fusion, 50), 4);
  // Fission of size s leaves two atoms: s − m >= 2.
  EXPECT_EQ(laws.choices(LawKind::Fission, 2), 1);
  EXPECT_EQ(laws.choices(LawKind::Fission, 3), 2);
  EXPECT_EQ(laws.choices(LawKind::Fission, 5), 4);
  EXPECT_EQ(laws.choices(LawKind::Fission, 99), 4);
}

TEST(Laws, InitialProbabilitiesUniform) {
  const LawTable laws(20, 0.05);
  const auto p = laws.probabilities(LawKind::Fusion, 10);
  ASSERT_EQ(p.size(), 4u);
  for (double pi : p) EXPECT_DOUBLE_EQ(pi, 0.25);
  const auto p3 = laws.probabilities(LawKind::Fission, 3);
  ASSERT_EQ(p3.size(), 2u);
  for (double pi : p3) EXPECT_DOUBLE_EQ(pi, 0.5);
}

TEST(Laws, ProbabilitiesAlwaysNormalized) {
  LawTable laws(30, 0.1);
  Rng rng(3);
  for (int step = 0; step < 500; ++step) {
    const int size = 2 + static_cast<int>(rng.below(29));
    const auto kind = rng.bernoulli(0.5) ? LawKind::Fusion : LawKind::Fission;
    const int chosen = laws.sample(kind, size, rng);
    laws.update(kind, size, chosen, rng.bernoulli(0.5));
    const auto p = laws.probabilities(kind, size);
    double total = 0.0;
    for (double pi : p) {
      EXPECT_GT(pi, 0.0);
      if (p.size() > 1) {
        EXPECT_LT(pi, 1.0);  // single-entry laws stay at 1
      }
      total += pi;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Laws, SampleWithinRange) {
  const LawTable laws(50, 0.05);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const int m = laws.sample(LawKind::Fission, 4, rng);
    EXPECT_GE(m, 0);
    EXPECT_LE(m, 2);  // choices(Fission, 4) = 3
  }
}

TEST(Laws, SuccessReinforcesChosenEntry) {
  LawTable laws(20, 0.1);
  const double before = laws.probabilities(LawKind::Fusion, 10)[2];
  laws.update(LawKind::Fusion, 10, 2, /*success=*/true);
  const double after = laws.probabilities(LawKind::Fusion, 10)[2];
  EXPECT_GT(after, before);
}

TEST(Laws, FailureWeakensChosenEntry) {
  LawTable laws(20, 0.1);
  const double before = laws.probabilities(LawKind::Fission, 10)[1];
  laws.update(LawKind::Fission, 10, 1, /*success=*/false);
  const double after = laws.probabilities(LawKind::Fission, 10)[1];
  EXPECT_LT(after, before);
}

TEST(Laws, RepeatedSuccessSaturatesBelowOne) {
  LawTable laws(20, 0.2);
  for (int i = 0; i < 100; ++i) {
    laws.update(LawKind::Fusion, 10, 0, true);
  }
  const auto p = laws.probabilities(LawKind::Fusion, 10);
  EXPECT_LT(p[0], 1.0);
  EXPECT_GT(p[0], 0.8);
  for (std::size_t i = 1; i < p.size(); ++i) EXPECT_GT(p[i], 0.0);
}

TEST(Laws, SingleChoiceLawIsInert) {
  LawTable laws(20, 0.1);
  laws.update(LawKind::Fusion, 1, 0, true);
  const auto p = laws.probabilities(LawKind::Fusion, 1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST(Laws, IndependentPerSizeAndKind) {
  LawTable laws(20, 0.1);
  laws.update(LawKind::Fusion, 10, 0, true);
  // Other sizes and the fission table are untouched.
  EXPECT_DOUBLE_EQ(laws.probabilities(LawKind::Fusion, 11)[0], 0.25);
  EXPECT_DOUBLE_EQ(laws.probabilities(LawKind::Fission, 10)[0], 0.25);
}

TEST(Laws, RejectsBadArguments) {
  EXPECT_THROW(LawTable(0, 0.1), Error);
  EXPECT_THROW(LawTable(10, 0.0), Error);
  EXPECT_THROW(LawTable(10, 1.0), Error);
  LawTable laws(10, 0.1);
  EXPECT_THROW(laws.choices(LawKind::Fusion, 0), Error);
  EXPECT_THROW(laws.choices(LawKind::Fusion, 11), Error);
  EXPECT_THROW(laws.update(LawKind::Fusion, 5, 9, true), Error);
}

}  // namespace
}  // namespace ffp
