#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace ffp {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  // 1..10: mean 5.5, sample variance 9.1666…
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_EQ(s.count(), 10);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
  EXPECT_NEAR(s.variance(), 55.0 / 6.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(55.0 / 6.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Quantile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, Extremes) {
  const std::vector<double> xs = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, Interpolates) {
  // Sorted: 0, 10. q=0.25 → 2.5.
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Quantile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(quantile({}, 0.5), Error);
  EXPECT_THROW(quantile({1.0}, -0.1), Error);
  EXPECT_THROW(quantile({1.0}, 1.1), Error);
}

TEST(Close, RelativeAndAbsolute) {
  EXPECT_TRUE(close(1.0, 1.0));
  EXPECT_TRUE(close(1e9, 1e9 * (1 + 1e-10)));
  EXPECT_FALSE(close(1.0, 1.1));
  EXPECT_TRUE(close(0.0, 1e-13));
  EXPECT_FALSE(close(0.0, 1e-3));
}

}  // namespace
}  // namespace ffp
