#include "linalg/lanczos.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"

namespace ffp {
namespace {

double residual(const SymmetricOperator& op, const Eigenpair& pair) {
  std::vector<double> ax(pair.vector.size());
  op.apply(pair.vector, ax);
  double r2 = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const double r = ax[i] - pair.value * pair.vector[i];
    r2 += r * r;
  }
  return std::sqrt(r2);
}

TEST(Lanczos, PathGraphFiedlerValue) {
  // λ2 of a path Laplacian: 4 sin²(π / 2n).
  const int n = 16;
  const auto g = make_path(n);
  const LaplacianOperator op(g);
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Combinatorial)};
  LanczosOptions opt;
  opt.nev = 1;
  const auto r = lanczos_smallest(op, opt, deflate);
  ASSERT_GE(r.pairs.size(), 1u);
  const double expect = 4.0 * std::pow(std::sin(M_PI / (2.0 * n)), 2);
  EXPECT_NEAR(r.pairs[0].value, expect, 1e-7);
  EXPECT_LT(residual(op, r.pairs[0]), 1e-5);
}

TEST(Lanczos, CycleGraphSpectrum) {
  // λ of a cycle: 2 − 2cos(2πk/n); the smallest nontrivial is k = 1,
  // doubly degenerate. A single-vector Krylov space holds only ONE copy of
  // a degenerate eigenvalue, so pairs[1] is either the twin (found through
  // rounding noise) or the next distinct eigenvalue (k = 2) — both correct.
  const int n = 12;
  const auto g = make_cycle(n);
  const LaplacianOperator op(g);
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Combinatorial)};
  LanczosOptions opt;
  opt.nev = 2;
  const auto r = lanczos_smallest(op, opt, deflate);
  ASSERT_GE(r.pairs.size(), 2u);
  const double lambda1 = 2.0 - 2.0 * std::cos(2.0 * M_PI / n);
  const double lambda2 = 2.0 - 2.0 * std::cos(4.0 * M_PI / n);
  EXPECT_NEAR(r.pairs[0].value, lambda1, 1e-7);
  const bool twin = std::abs(r.pairs[1].value - lambda1) < 1e-6;
  const bool next = std::abs(r.pairs[1].value - lambda2) < 1e-6;
  EXPECT_TRUE(twin || next) << "got " << r.pairs[1].value;
}

TEST(Lanczos, CompleteGraphEigenvalueIsN) {
  const int n = 9;
  const auto g = make_complete(n);
  const LaplacianOperator op(g);
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Combinatorial)};
  LanczosOptions opt;
  opt.nev = 3;
  const auto r = lanczos_smallest(op, opt, deflate);
  for (const auto& pair : r.pairs) {
    EXPECT_NEAR(pair.value, static_cast<double>(n), 1e-6);
  }
}

TEST(Lanczos, DisconnectedGraphHasZeroEigenvalue) {
  // Two components → second zero eigenvalue survives deflation of 1.
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {2, 3, 1}};
  const auto g = Graph::from_edges(4, edges);
  const LaplacianOperator op(g);
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Combinatorial)};
  LanczosOptions opt;
  opt.nev = 1;
  const auto r = lanczos_smallest(op, opt, deflate);
  ASSERT_GE(r.pairs.size(), 1u);
  EXPECT_NEAR(r.pairs[0].value, 0.0, 1e-8);
}

TEST(Lanczos, VectorsOrthogonalToDeflation) {
  const auto g = make_grid2d(5, 5);
  const LaplacianOperator op(g);
  const auto ones = trivial_eigenvector(g, SpectralProblem::Combinatorial);
  std::vector<std::vector<double>> deflate{ones};
  LanczosOptions opt;
  opt.nev = 3;
  const auto r = lanczos_smallest(op, opt, deflate);
  for (const auto& pair : r.pairs) {
    EXPECT_NEAR(std::abs(dot(pair.vector, ones)), 0.0, 1e-8);
  }
}

TEST(Lanczos, PairwiseOrthogonalVectors) {
  const auto g = make_grid2d(6, 4);
  const LaplacianOperator op(g);
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Combinatorial)};
  LanczosOptions opt;
  opt.nev = 4;
  const auto r = lanczos_smallest(op, opt, deflate);
  ASSERT_GE(r.pairs.size(), 4u);
  for (std::size_t i = 0; i < r.pairs.size(); ++i) {
    EXPECT_NEAR(norm2(r.pairs[i].vector), 1.0, 1e-8);
    for (std::size_t j = i + 1; j < r.pairs.size(); ++j) {
      EXPECT_NEAR(std::abs(dot(r.pairs[i].vector, r.pairs[j].vector)), 0.0,
                  1e-7);
    }
  }
}

TEST(Lanczos, NormalizedLaplacianSpectrumInRange) {
  const auto g = with_random_weights(make_grid2d(5, 5), 0.5, 4.0, 3);
  const NormalizedLaplacianOperator op(g);
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Normalized)};
  LanczosOptions opt;
  opt.nev = 3;
  const auto r = lanczos_smallest(op, opt, deflate);
  for (const auto& pair : r.pairs) {
    EXPECT_GE(pair.value, -1e-9);
    EXPECT_LE(pair.value, 2.0 + 1e-9);
    EXPECT_LT(residual(op, pair), 1e-5);
  }
}

TEST(Lanczos, DeterministicForSeed) {
  const auto g = make_torus(5, 5);
  const LaplacianOperator op(g);
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Combinatorial)};
  LanczosOptions opt;
  opt.nev = 1;
  opt.seed = 77;
  const auto a = lanczos_smallest(op, opt, deflate);
  const auto b = lanczos_smallest(op, opt, deflate);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  EXPECT_DOUBLE_EQ(a.pairs[0].value, b.pairs[0].value);
}

TEST(Lanczos, TinyOperator) {
  const auto g = make_path(2);
  const LaplacianOperator op(g);
  LanczosOptions opt;
  opt.nev = 1;
  const auto r = lanczos_smallest(op, opt);
  ASSERT_GE(r.pairs.size(), 1u);
  EXPECT_NEAR(r.pairs[0].value, 0.0, 1e-9);  // smallest of {0, 2}
}

}  // namespace
}  // namespace ffp
