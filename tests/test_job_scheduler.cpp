#include "service/job_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "solver/portfolio.hpp"
#include "solver/registry.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

std::shared_ptr<const Graph> test_graph() {
  static const auto g = std::make_shared<const Graph>(make_grid2d(16, 16));
  return g;
}

JobSpec quick_job(std::uint64_t seed, std::int64_t steps = 2000) {
  JobSpec spec;
  spec.graph = test_graph();
  spec.k = 6;
  spec.seed = seed;
  spec.steps = steps;
  return spec;
}

/// The partition as the bytes write_partition would put in a file — the
/// currency of the determinism contract.
std::string partition_bytes(const JobStatus& status) {
  EXPECT_NE(status.result, nullptr);
  std::ostringstream out;
  write_partition(status.result->best.assignment(), out);
  return out.str();
}

TEST(JobScheduler, RunsAJobToDone) {
  JobScheduler scheduler;
  const auto id = scheduler.submit(quick_job(7));
  const JobStatus status = scheduler.wait(id);
  EXPECT_EQ(status.state, JobState::Done);
  ASSERT_NE(status.result, nullptr);
  testing::expect_valid_partition(status.result->best, 6);
  EXPECT_GT(status.result->best_value, 0.0);
  EXPECT_FALSE(status.progress.empty());
  EXPECT_EQ(scheduler.jobs_completed(), 1);
}

TEST(JobScheduler, ValidatesSpecsAtSubmit) {
  JobScheduler scheduler;
  JobSpec no_graph = quick_job(1);
  no_graph.graph = nullptr;
  EXPECT_THROW(scheduler.submit(no_graph), Error);
  JobSpec bad_k = quick_job(1);
  bad_k.k = 0;
  EXPECT_THROW(scheduler.submit(bad_k), Error);
  JobSpec bad_method = quick_job(1);
  bad_method.method = "no_such_solver";
  EXPECT_THROW(scheduler.submit(bad_method), Error);
  JobSpec bad_option = quick_job(1);
  bad_option.method = "fusion_fission:bogus_key=1";
  EXPECT_THROW(scheduler.submit(bad_option), Error);
}

TEST(JobScheduler, UnknownIdsThrowOrReturnFalse) {
  JobScheduler scheduler;
  EXPECT_THROW(scheduler.status(99), Error);
  EXPECT_THROW(scheduler.wait(99), Error);
  EXPECT_FALSE(scheduler.cancel(99));
}

TEST(JobScheduler, EmptyQueueShutdownDoesNotHang) {
  JobScheduler scheduler;
  scheduler.shutdown();
  scheduler.shutdown();  // idempotent
  EXPECT_THROW(scheduler.submit(quick_job(1)), Error);
}

TEST(JobScheduler, DrainOnNoJobsReturnsImmediately) {
  JobScheduler scheduler;
  scheduler.drain();
}

TEST(JobScheduler, PriorityBeatsFifoAndFifoHoldsWithinPriority) {
  // Single runner: job A occupies it while B (low) and C (high) queue; the
  // runner must pick C before B. Execution order is observed through each
  // job's first improvement event.
  std::mutex mu;
  std::vector<std::uint64_t> first_seen;
  JobSchedulerOptions options;
  options.runners = 1;
  ThreadBudget budget(1);
  options.budget = &budget;
  options.on_improvement = [&](std::uint64_t job, double, double) {
    std::lock_guard lock(mu);
    if (std::find(first_seen.begin(), first_seen.end(), job) ==
        first_seen.end()) {
      first_seen.push_back(job);
    }
  };
  JobScheduler scheduler(std::move(options));
  const auto a = scheduler.submit(quick_job(1));
  JobSpec low = quick_job(2);
  low.priority = 0;
  JobSpec high = quick_job(3);
  high.priority = 5;
  const auto b = scheduler.submit(low);
  const auto c = scheduler.submit(high);
  scheduler.drain();

  std::lock_guard lock(mu);
  const auto pos = [&](std::uint64_t id) {
    return std::find(first_seen.begin(), first_seen.end(), id) -
           first_seen.begin();
  };
  ASSERT_EQ(first_seen.size(), 3u);
  EXPECT_LT(pos(c), pos(b));  // priority first...
  EXPECT_LT(pos(a), pos(b));  // ...and FIFO within equal priority
}

TEST(JobScheduler, CancelQueuedJobRemovesIt) {
  JobSchedulerOptions options;
  options.runners = 1;
  ThreadBudget budget(1);
  options.budget = &budget;
  JobScheduler scheduler(std::move(options));
  // A long blocker keeps the single runner busy while we cancel the
  // queued victim behind it.
  const auto blocker = scheduler.submit(quick_job(1, 3'000'000));
  const auto victim = scheduler.submit(quick_job(2));
  EXPECT_TRUE(scheduler.cancel(victim));
  const JobStatus victim_status = scheduler.wait(victim);
  EXPECT_EQ(victim_status.state, JobState::Cancelled);
  EXPECT_EQ(victim_status.result, nullptr);
  EXPECT_FALSE(scheduler.cancel(victim));  // already terminal

  EXPECT_TRUE(scheduler.cancel(blocker));
  scheduler.drain();
}

TEST(JobScheduler, CancelMidRunReturnsBestSoFar) {
  JobScheduler scheduler;
  // Far more steps than we are willing to wait for: only cancellation can
  // finish this job promptly.
  const auto id = scheduler.submit(quick_job(5, 50'000'000));
  // Let it actually start and improve a little before pulling the plug.
  while (scheduler.status(id).progress.empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(scheduler.cancel(id));
  const JobStatus status = scheduler.wait(id);
  EXPECT_EQ(status.state, JobState::Cancelled);
  ASSERT_NE(status.result, nullptr);  // anytime: best-so-far, not wasted
  testing::expect_valid_partition(status.result->best, 6);
}

TEST(JobScheduler, FailedJobCarriesTheError) {
  JobScheduler scheduler;
  JobSpec spec = quick_job(1);
  spec.k = 10'000;  // more parts than vertices: the solver throws
  const auto id = scheduler.submit(spec);
  const JobStatus status = scheduler.wait(id);
  EXPECT_EQ(status.state, JobState::Failed);
  EXPECT_EQ(status.result, nullptr);
  EXPECT_FALSE(status.error.empty());
}

TEST(JobScheduler, BudgetOfOneStillCompletesParallelWork) {
  ThreadBudget budget(1);
  JobSchedulerOptions options;
  options.runners = 4;
  options.budget = &budget;
  JobScheduler scheduler(std::move(options));
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    JobSpec spec = quick_job(100 + static_cast<std::uint64_t>(i));
    spec.threads = 4;  // wants 4 workers; the budget grants none extra
    ids.push_back(scheduler.submit(spec));
  }
  scheduler.drain();
  for (const auto id : ids) {
    EXPECT_EQ(scheduler.status(id).state, JobState::Done);
  }
  // The acceptance bound: leased workers never exceeded the budget.
  EXPECT_LE(budget.peak_in_use(), budget.total());
  EXPECT_EQ(budget.peak_in_use(), 1u);
}

// The tentpole's determinism contract: a fixed seeded job set produces
// byte-identical partition files whether the jobs run one at a time or
// concurrently, at any worker budget.
TEST(JobScheduler, SerialVsConcurrentByteIdenticalAtBudgets148) {
  std::vector<JobSpec> specs;
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    JobSpec spec = quick_job(seed, 3000);
    spec.threads = 2;  // intra-run engine wants workers; grants vary
    specs.push_back(spec);
  }
  JobSpec annealing = quick_job(21, 20000);
  annealing.method = "annealing";
  specs.push_back(annealing);
  JobSpec direct = quick_job(31);
  direct.method = "multilevel";
  specs.push_back(direct);

  // Reference: strictly serial (one runner, one worker slot).
  std::vector<std::string> reference;
  {
    ThreadBudget budget(1);
    JobSchedulerOptions options;
    options.runners = 1;
    options.budget = &budget;
    JobScheduler scheduler(std::move(options));
    for (const auto& spec : specs) {
      reference.push_back(partition_bytes(scheduler.wait(scheduler.submit(spec))));
    }
  }

  for (const unsigned budget_size : {1u, 4u, 8u}) {
    ThreadBudget budget(budget_size);
    JobSchedulerOptions options;
    options.runners = 3;
    options.budget = &budget;
    JobScheduler scheduler(std::move(options));
    std::vector<std::uint64_t> ids;
    for (const auto& spec : specs) ids.push_back(scheduler.submit(spec));
    scheduler.drain();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(partition_bytes(scheduler.status(ids[i])), reference[i])
          << "job " << i << " diverged at budget " << budget_size;
    }
    EXPECT_LE(budget.peak_in_use(), budget.total());
  }
}

TEST(JobScheduler, RestartsRunAPortfolioInsideTheJob) {
  JobSpec spec = quick_job(17, 1500);
  spec.restarts = 3;
  spec.threads = 2;

  // Reference: the portfolio run directly, same seed stream and options.
  std::string expected;
  {
    ThreadBudget budget(2);
    PortfolioOptions popt;
    popt.restarts = 3;
    popt.threads = 2;
    popt.budget = &budget;
    SolverRequest request;
    request.k = spec.k;
    request.objective = spec.objective;
    request.seed = spec.seed;
    request.threads = spec.threads;
    request.budget = &budget;
    request.stop = StopCondition::after_steps(spec.steps);
    const auto team = PortfolioRunner(make_solver(spec.method), popt)
                          .run(*spec.graph, request);
    std::ostringstream out;
    write_partition(team.best.assignment(), out);
    expected = out.str();
  }

  ThreadBudget budget(2);
  JobSchedulerOptions options;
  options.budget = &budget;
  JobScheduler scheduler(std::move(options));
  const JobStatus status = scheduler.wait(scheduler.submit(spec));
  EXPECT_EQ(status.state, JobState::Done);
  EXPECT_EQ(partition_bytes(status), expected);
  ASSERT_NE(status.result, nullptr);
  EXPECT_EQ(status.result->stat("restarts"), 3.0);

  JobSpec bad = quick_job(1);
  bad.restarts = 0;
  EXPECT_THROW(scheduler.submit(bad), Error);
}

TEST(JobScheduler, OnTerminalFiresOncePerJob) {
  std::mutex mu;
  std::map<std::uint64_t, int> fired;
  std::map<std::uint64_t, JobState> states;
  JobSchedulerOptions options;
  options.on_terminal = [&](std::uint64_t id, const JobStatus& status) {
    std::lock_guard lock(mu);
    ++fired[id];
    states[id] = status.state;
  };
  std::uint64_t done = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  {
    JobScheduler scheduler(std::move(options));
    done = scheduler.submit(quick_job(5, 500));
    JobSpec failing = quick_job(6);
    failing.k = 100000;  // more parts than vertices: solver throws
    failed = scheduler.submit(failing);
    scheduler.drain();
    // A queued job cancelled before any runner claims it still notifies.
    JobSpec slow = quick_job(7, 50'000'000);
    cancelled = scheduler.submit(slow);
    scheduler.cancel(cancelled);
    scheduler.shutdown();
  }
  std::lock_guard lock(mu);
  EXPECT_EQ(fired[done], 1);
  EXPECT_EQ(states[done], JobState::Done);
  EXPECT_EQ(fired[failed], 1);
  EXPECT_EQ(states[failed], JobState::Failed);
  EXPECT_EQ(fired[cancelled], 1);
  EXPECT_EQ(states[cancelled], JobState::Cancelled);
}

/// Parks a wall-clock job on the (single) runner and returns once the
/// scheduler reports it Running — so anything submitted after is
/// guaranteed to wait in the queue.
std::uint64_t occupy_runner(JobScheduler& scheduler, double budget_ms) {
  JobSpec blocker = quick_job(1);
  blocker.steps = 0;
  blocker.budget_ms = budget_ms;
  const auto id = scheduler.submit(std::move(blocker));
  while (scheduler.status(id).state == JobState::Queued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return id;
}

TEST(JobScheduler, QueueTtlExpiresWaitingJobsWithStructuredError) {
  JobScheduler scheduler;  // one runner
  const auto blocker = occupy_runner(scheduler, 300);
  JobSpec stale = quick_job(2);
  stale.queue_ttl_ms = 1;  // the blocker guarantees > 1 ms in queue
  const auto id = scheduler.submit(std::move(stale));
  const JobStatus status = scheduler.wait(id);
  EXPECT_EQ(status.state, JobState::Failed);
  EXPECT_EQ(status.error_code, ErrCode::QueueExpired);
  EXPECT_TRUE(err_retryable(status.error_code));
  EXPECT_NE(status.error.find("expired in queue"), std::string::npos)
      << status.error;
  EXPECT_EQ(status.result, nullptr);
  scheduler.cancel(blocker);
}

TEST(JobScheduler, BoundedQueueShedsWithRetryHint) {
  JobSchedulerOptions options;
  options.max_queued = 1;
  options.overload_retry_after_ms = 77;
  JobScheduler scheduler(std::move(options));
  const auto blocker = occupy_runner(scheduler, 2000);
  const auto queued = scheduler.submit(quick_job(2));  // fills the queue
  try {
    scheduler.submit(quick_job(3));
    FAIL() << "expected an Overloaded rejection";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ErrCode::Overloaded);
    EXPECT_TRUE(e.retryable());
    EXPECT_EQ(e.retry_after_ms(), 77.0);
  }
  scheduler.cancel(queued);
  scheduler.cancel(blocker);
}

TEST(JobScheduler, WaitForBoundsTheWaitThenDelivers) {
  JobScheduler scheduler;
  const auto id = occupy_runner(scheduler, 400);
  // Far too short: the deadline-bounded wait must give up, not block.
  EXPECT_FALSE(scheduler.wait_for(id, 1).has_value());
  // Generous: the same call returns the terminal status.
  const auto status = scheduler.wait_for(id, 60000);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::Done);
}

TEST(JobScheduler, SubmitAfterShutdownIsShuttingDown) {
  JobScheduler scheduler;
  scheduler.shutdown();
  try {
    scheduler.submit(quick_job(1));
    FAIL() << "expected a ShuttingDown rejection";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.code(), ErrCode::ShuttingDown);
    EXPECT_TRUE(e.retryable());
  }
}

}  // namespace
}  // namespace ffp
