#include "atc/core_area.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/connectivity.hpp"

namespace ffp {
namespace {

// The full 762/3165 build is a few hundred ms; share one instance.
const CoreAreaGraph& shared_core() {
  static const CoreAreaGraph core = make_core_area_graph();
  return core;
}

TEST(Airspace, SectorCountAndLayers) {
  AirspaceOptions opt;
  opt.n_sectors = 200;
  const auto a = make_airspace(opt);
  EXPECT_EQ(a.sectors.size(), 200u);
  int lower = 0, upper = 0;
  for (const auto& s : a.sectors) {
    EXPECT_TRUE(s.layer == 0 || s.layer == 1);
    (s.layer == 0 ? lower : upper)++;
  }
  EXPECT_NEAR(static_cast<double>(lower) / 200.0, opt.lower_fraction, 0.05);
  EXPECT_GT(upper, 0);
}

TEST(Airspace, SectorsInsideCountryBoxes) {
  AirspaceOptions opt;
  opt.n_sectors = 150;
  const auto a = make_airspace(opt);
  const auto countries = core_area_countries();
  for (const auto& s : a.sectors) {
    ASSERT_GE(s.country, 0);
    ASSERT_LT(s.country, static_cast<int>(countries.size()));
    const auto& box = countries[static_cast<std::size_t>(s.country)];
    EXPECT_GE(s.x, box.x0);
    EXPECT_LE(s.x, box.x1);
    EXPECT_GE(s.y, box.y0);
    EXPECT_LE(s.y, box.y1);
  }
}

TEST(Airspace, SpatiallyOrderedIds) {
  // After relabeling, lower-layer ids precede upper-layer ids.
  AirspaceOptions opt;
  opt.n_sectors = 120;
  const auto a = make_airspace(opt);
  int last_layer = 0;
  for (const auto& s : a.sectors) {
    EXPECT_GE(s.layer, last_layer);
    last_layer = s.layer;
  }
}

TEST(Airspace, DeterministicForSeed) {
  AirspaceOptions opt;
  opt.n_sectors = 100;
  const auto a = make_airspace(opt);
  const auto b = make_airspace(opt);
  ASSERT_EQ(a.adjacency.size(), b.adjacency.size());
  for (std::size_t i = 0; i < a.adjacency.size(); ++i) {
    EXPECT_EQ(a.adjacency[i].u, b.adjacency[i].u);
    EXPECT_EQ(a.adjacency[i].v, b.adjacency[i].v);
  }
}

TEST(Flows, WeightsArePositiveAndHeavyTailed) {
  AirspaceOptions aopt;
  aopt.n_sectors = 250;
  const auto a = make_airspace(aopt);
  FlowOptions fopt;
  const auto flows = route_flows(a, fopt);
  ASSERT_EQ(flows.weighted_edges.size(), a.adjacency.size());
  double max_w = 0.0, total = 0.0;
  for (const auto& e : flows.weighted_edges) {
    EXPECT_GE(e.w, fopt.base_flow);
    max_w = std::max(max_w, e.w);
    total += e.w;
  }
  const double mean = total / flows.weighted_edges.size();
  EXPECT_GT(max_w, 10.0 * mean);  // heavy tail: hub corridors dominate
}

TEST(Flows, HubsAreLowerLayerSectors) {
  AirspaceOptions aopt;
  aopt.n_sectors = 250;
  const auto a = make_airspace(aopt);
  const auto flows = route_flows(a, {});
  EXPECT_GE(flows.hubs.size(), 2u);
  std::set<VertexId> unique(flows.hubs.begin(), flows.hubs.end());
  EXPECT_EQ(unique.size(), flows.hubs.size());
  for (VertexId h : flows.hubs) {
    EXPECT_EQ(a.sectors[static_cast<std::size_t>(h)].layer, 0);
  }
}

TEST(CoreArea, ExactPaperCounts) {
  const auto& core = shared_core();
  EXPECT_EQ(core.graph.num_vertices(), 762);
  EXPECT_EQ(core.graph.num_edges(), 3165);
}

TEST(CoreArea, Connected) {
  EXPECT_TRUE(is_connected(shared_core().graph));
}

TEST(CoreArea, MeanDegreeMatchesPaper) {
  // 2·3165 / 762 ≈ 8.3 neighbors per sector.
  const auto& g = shared_core().graph;
  const double mean_deg = 2.0 * g.num_edges() / g.num_vertices();
  EXPECT_NEAR(mean_deg, 8.3, 0.1);
}

TEST(CoreArea, FlowWeightsAreAircraftCounts) {
  const auto& g = shared_core().graph;
  for (Weight w : g.arc_weights()) {
    EXPECT_GE(w, 1.0);
    EXPECT_DOUBLE_EQ(w, std::round(w));  // whole aircraft
  }
}

TEST(CoreArea, DeterministicDefaultBuild) {
  const auto again = make_core_area_graph();
  const auto& g = shared_core().graph;
  ASSERT_EQ(again.graph.num_vertices(), g.num_vertices());
  EXPECT_DOUBLE_EQ(again.graph.total_edge_weight(), g.total_edge_weight());
}

TEST(CoreArea, DifferentSeedDifferentFlows) {
  CoreAreaOptions opt;
  opt.seed = 777;
  opt.n_sectors = 120;
  opt.n_edges = 470;
  const auto a = make_core_area_graph(opt);
  opt.seed = 778;
  const auto b = make_core_area_graph(opt);
  EXPECT_NE(a.graph.total_edge_weight(), b.graph.total_edge_weight());
}

TEST(CoreArea, CustomSizesRespected) {
  CoreAreaOptions opt;
  opt.n_sectors = 90;
  opt.n_edges = 330;
  opt.seed = 9;
  const auto small = make_core_area_graph(opt);
  EXPECT_EQ(small.graph.num_vertices(), 90);
  EXPECT_EQ(small.graph.num_edges(), 330);
  EXPECT_TRUE(is_connected(small.graph));
}

TEST(CoreArea, RejectsImpossibleEdgeCount) {
  CoreAreaOptions opt;
  opt.n_sectors = 50;
  opt.n_edges = 10;  // below spanning tree
  EXPECT_THROW(make_core_area_graph(opt), Error);
}

}  // namespace
}  // namespace ffp
