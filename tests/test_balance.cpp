#include "partition/balance.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/objectives.hpp"

namespace ffp {
namespace {

TEST(Imbalance, PerfectBalanceIsOne) {
  const auto g = make_path(8);
  const auto p = Partition::from_assignment(
      g, std::vector<int>{0, 0, 1, 1, 2, 2, 3, 3});
  EXPECT_DOUBLE_EQ(imbalance(p), 1.0);
  EXPECT_DOUBLE_EQ(imbalance(p, 4), 1.0);
}

TEST(Imbalance, DetectsHeavyPart) {
  const auto g = make_path(8);
  const auto p = Partition::from_assignment(
      g, std::vector<int>{0, 0, 0, 0, 0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(imbalance(p, 2), 6.0 / 4.0);
}

TEST(Imbalance, UsesVertexWeights) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1.0}};
  const auto g = Graph::from_edges(2, edges, {3.0, 1.0});
  const auto p = Partition::from_assignment(g, std::vector<int>{0, 1});
  EXPECT_DOUBLE_EQ(imbalance(p, 2), 3.0 / 2.0);
}

TEST(Imbalance, AgainstTargetKCountsEmpties) {
  const auto g = make_path(4);
  const auto p = Partition::from_assignment(g, std::vector<int>{0, 0, 0, 0}, 4);
  EXPECT_DOUBLE_EQ(imbalance(p, 4), 4.0);
}

TEST(Imbalance, RejectsBadK) {
  const auto g = make_path(4);
  const Partition p(g, 2);
  EXPECT_THROW(imbalance(p, 0), Error);
}

TEST(Rebalance, FixesSkewedBisection) {
  const auto g = make_grid2d(6, 6);
  // All vertices in part 0 except one.
  std::vector<int> assign(36, 0);
  assign[35] = 1;
  auto p = Partition::from_assignment(g, assign, 2);
  Rng rng(5);
  rebalance(p, 2, 1.10, rng);
  EXPECT_LE(imbalance(p, 2), 1.10 + 1e-9);
  EXPECT_NO_THROW(p.validate());
}

TEST(Rebalance, NoopWhenAlreadyBalanced) {
  const auto g = make_path(8);
  auto p = Partition::from_assignment(
      g, std::vector<int>{0, 0, 1, 1, 2, 2, 3, 3});
  const double cut_before = p.edge_cut();
  Rng rng(6);
  rebalance(p, 4, 1.05, rng);
  EXPECT_DOUBLE_EQ(p.edge_cut(), cut_before);
}

TEST(Rebalance, PrefersCheapMoves) {
  // Barbell: moving bridge-side vertices is cheaper than clique interiors.
  const auto g = make_barbell(6, 0);
  std::vector<int> assign(12, 0);
  assign[11] = 1;
  auto p = Partition::from_assignment(g, assign, 2);
  Rng rng(7);
  rebalance(p, 2, 1.05, rng);
  EXPECT_LE(imbalance(p, 2), 1.34);  // 12 vertices: 7/6 at best
  // The rebalanced cut should be far below the worst case (full clique cut).
  EXPECT_LT(p.edge_cut(), 16.0);
}

TEST(Rebalance, RejectsBadTolerance) {
  const auto g = make_path(4);
  Partition p(g, 2);
  Rng rng(8);
  EXPECT_THROW(rebalance(p, 2, 0.9, rng), Error);
}

}  // namespace
}  // namespace ffp
