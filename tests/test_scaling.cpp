#include "core/scaling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ffp {
namespace {

TEST(Scaling, BindingEnergyFormulas) {
  const double two_m = 200.0;
  const auto cut = make_scaling(ScalingKind::BindingEnergy, ObjectiveKind::Cut,
                                two_m / 2.0);
  EXPECT_NEAR(cut->scale(2), two_m * 0.5, 1e-12);
  EXPECT_NEAR(cut->scale(4), two_m * 0.75, 1e-12);

  const auto ncut = make_scaling(ScalingKind::BindingEnergy,
                                 ObjectiveKind::NormalizedCut, 100.0);
  EXPECT_DOUBLE_EQ(ncut->scale(2), 1.0);
  EXPECT_DOUBLE_EQ(ncut->scale(33), 32.0);

  const auto mcut = make_scaling(ScalingKind::BindingEnergy,
                                 ObjectiveKind::MinMaxCut, 100.0);
  EXPECT_DOUBLE_EQ(mcut->scale(2), 2.0);
  EXPECT_DOUBLE_EQ(mcut->scale(5), 20.0);
}

TEST(Scaling, MonotoneIncreasingInPartCount) {
  for (auto obj : {ObjectiveKind::Cut, ObjectiveKind::NormalizedCut,
                   ObjectiveKind::MinMaxCut}) {
    const auto s = make_scaling(ScalingKind::BindingEnergy, obj, 500.0);
    for (int p = 2; p < 40; ++p) {
      EXPECT_LT(s->scale(p), s->scale(p + 1)) << objective_name(obj);
    }
  }
}

TEST(Scaling, DegenerateCountsScaleToZero) {
  for (auto kind : {ScalingKind::BindingEnergy, ScalingKind::Linear,
                    ScalingKind::Identity}) {
    const auto s = make_scaling(kind, ObjectiveKind::MinMaxCut, 100.0);
    EXPECT_DOUBLE_EQ(s->scale(1), 0.0);
    EXPECT_DOUBLE_EQ(s->scale(0), 0.0);
  }
}

TEST(Scaling, LinearAndIdentityVariants) {
  const auto lin = make_scaling(ScalingKind::Linear, ObjectiveKind::Cut, 1.0);
  EXPECT_DOUBLE_EQ(lin->scale(7), 7.0);
  const auto id = make_scaling(ScalingKind::Identity, ObjectiveKind::Cut, 1.0);
  EXPECT_DOUBLE_EQ(id->scale(7), 1.0);
  EXPECT_EQ(lin->name(), "linear");
  EXPECT_EQ(id->name(), "identity");
}

TEST(PartitionEnergy, DividesByScale) {
  const auto s = make_scaling(ScalingKind::BindingEnergy,
                              ObjectiveKind::MinMaxCut, 100.0);
  EXPECT_DOUBLE_EQ(partition_energy(40.0, 5, *s), 2.0);
}

TEST(PartitionEnergy, SinglePartIsInfinite) {
  const auto s = make_scaling(ScalingKind::BindingEnergy,
                              ObjectiveKind::MinMaxCut, 100.0);
  EXPECT_TRUE(std::isinf(partition_energy(0.0, 1, *s)));
}

// The paper's requirement (§4.1): "energies are the same for the same
// quality of partitioning" across different part counts. Random partitions
// of the same graph at different p must have comparable energies under the
// binding-energy scaling — and wildly different raw objectives.
TEST(PartitionEnergy, RandomPartitionsFlatAcrossPartCounts) {
  // Ncut is penalty-free (terms bounded by 1), which isolates the flatness
  // property from the Mcut zero-denominator guard; a dense geometric graph
  // keeps every random part internally connected anyway.
  const auto g =
      with_random_weights(make_random_geometric(150, 0.28, 5), 1.0, 3.0, 5);
  const auto& ncut = objective(ObjectiveKind::NormalizedCut);
  const auto s = make_scaling(ScalingKind::BindingEnergy,
                              ObjectiveKind::NormalizedCut,
                              g.total_edge_weight());
  Rng rng(7);
  RunningStats energies;
  double min_raw = 1e300, max_raw = 0.0;
  for (int p : {4, 8, 16, 24}) {
    RunningStats raw;
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<int> assign(static_cast<std::size_t>(g.num_vertices()));
      // Balanced random assignment (round robin + shuffle) so no part is
      // empty or degenerate.
      for (std::size_t i = 0; i < assign.size(); ++i) {
        assign[i] = static_cast<int>(i % static_cast<std::size_t>(p));
      }
      rng.shuffle(assign);
      const auto part = Partition::from_assignment(g, assign, p);
      const double value = ncut.evaluate(part);
      raw.add(value);
      energies.add(partition_energy(value, p, *s));
    }
    min_raw = std::min(min_raw, raw.mean());
    max_raw = std::max(max_raw, raw.mean());
  }
  // Raw Ncut spans several-fold across p…
  EXPECT_GT(max_raw / min_raw, 4.0);
  // …while scaled energies stay within a tight band.
  EXPECT_LT(energies.max() / energies.min(), 1.6);
}

TEST(Scaling, NamesAreStable) {
  const auto s = make_scaling(ScalingKind::BindingEnergy,
                              ObjectiveKind::Cut, 1.0);
  EXPECT_EQ(s->name(), "binding-energy");
}

}  // namespace
}  // namespace ffp
