#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace ffp {
namespace {

TEST(ChacoIo, ReadsUnweightedGraph) {
  // Triangle in Chaco format (1-based neighbor lists).
  std::istringstream in("3 3\n2 3\n1 3\n1 2\n");
  const auto g = read_chaco(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(ChacoIo, ReadsEdgeWeights) {
  std::istringstream in("2 1 1\n2 7.5\n1 7.5\n");
  const auto g = read_chaco(in);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 7.5);
}

TEST(ChacoIo, ReadsVertexWeights) {
  std::istringstream in("2 1 10\n3 2\n4 1\n");
  const auto g = read_chaco(in);
  EXPECT_DOUBLE_EQ(g.vertex_weight(0), 3.0);
  EXPECT_DOUBLE_EQ(g.vertex_weight(1), 4.0);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(ChacoIo, ReadsBothWeights) {
  std::istringstream in("2 1 11\n5 2 2.5\n6 1 2.5\n");
  const auto g = read_chaco(in);
  EXPECT_DOUBLE_EQ(g.vertex_weight(0), 5.0);
  EXPECT_DOUBLE_EQ(g.vertex_weight(1), 6.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.5);
}

TEST(ChacoIo, SkipsComments) {
  std::istringstream in("% header comment\n3 2\n# another\n2\n1 3\n2\n");
  const auto g = read_chaco(in);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(ChacoIo, IsolatedVertexLine) {
  std::istringstream in("3 1\n2\n1\n\n");
  const auto g = read_chaco(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(ChacoIo, ErrorOnMissingHeader) {
  std::istringstream in("");
  EXPECT_THROW(read_chaco(in), Error);
}

TEST(ChacoIo, ErrorOnBadNeighborId) {
  std::istringstream in("2 1\n3\n1\n");  // id 3 out of range
  EXPECT_THROW(read_chaco(in), Error);
}

TEST(ChacoIo, ErrorOnSelfLoop) {
  std::istringstream in("2 1\n1\n2\n");
  EXPECT_THROW(read_chaco(in), Error);
}

TEST(ChacoIo, ErrorOnEdgeCountMismatch) {
  std::istringstream in("3 5\n2\n1\n\n");
  EXPECT_THROW(read_chaco(in), Error);
}

TEST(ChacoIo, ErrorOnTruncatedFile) {
  std::istringstream in("3 2\n2\n");
  EXPECT_THROW(read_chaco(in), Error);
}

TEST(ChacoIo, ErrorMessagesCarryLineNumbers) {
  std::istringstream in("2 1\nbogus\n1\n");
  try {
    read_chaco(in);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

// ---- hardening against untrusted input (the ffp_serve attack surface) ----

TEST(ChacoIo, ErrorOnVertexCountBeyondVertexIdRange) {
  // 2^33 vertices: used to truncate silently through the VertexId cast.
  std::istringstream in("8589934592 1\n2\n1\n");
  EXPECT_THROW(read_chaco(in), Error);
}

TEST(ChacoIo, ErrorOnDeclaredEdgeCountBeyondLimit) {
  std::istringstream in("3 9000000000000000000\n2\n1\n\n");
  // A huge declared m must fail cleanly (count mismatch at worst), not
  // pre-allocate by the header.
  EXPECT_THROW(read_chaco(in), Error);
}

TEST(ChacoIo, IoLimitsCapVerticesAndEdges) {
  IoLimits limits;
  limits.max_vertices = 4;
  std::istringstream big_n("5 0\n\n\n\n\n\n");
  EXPECT_THROW(read_chaco(big_n, limits), Error);

  limits = {};
  limits.max_edges = 1;
  std::istringstream big_m("3 2\n2 3\n1 3\n1 2\n");
  EXPECT_THROW(read_chaco(big_m, limits), Error);

  // Within the caps everything still parses.
  limits.max_vertices = 3;
  limits.max_edges = 3;
  std::istringstream ok("3 3\n2 3\n1 3\n1 2\n");
  EXPECT_EQ(read_chaco(ok, limits).num_edges(), 3);
}

TEST(ChacoIo, ErrorOnDuplicateNeighborEntry) {
  std::istringstream in("3 3\n2 2 3\n1 3\n1 2\n");
  try {
    read_chaco(in);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate edge"), std::string::npos);
  }
}

TEST(ChacoIo, ErrorOnNonFiniteWeights) {
  // from_chars happily parses "nan" and "inf"; the reader must not.
  std::istringstream nan_ew("2 1 1\n2 nan\n1 nan\n");
  EXPECT_THROW(read_chaco(nan_ew), Error);
  std::istringstream inf_vw("2 1 10\ninf 2\n4 1\n");
  EXPECT_THROW(read_chaco(inf_vw), Error);
}

TEST(ChacoIo, ErrorOnBogusFmtField) {
  std::istringstream in("2 1 2\n2\n1\n");  // fmt digit not in {0, 1}
  EXPECT_THROW(read_chaco(in), Error);
  std::istringstream neg("2 1 -1\n2\n1\n");
  EXPECT_THROW(read_chaco(neg), Error);
}

TEST(ChacoIo, SelfLoopErrorNamesTheVertex) {
  std::istringstream in("2 1\n1\n2\n");
  try {
    read_chaco(in);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("self loop on vertex 1"),
              std::string::npos);
  }
}

TEST(ChacoIo, RoundTripUnweighted) {
  const auto g = make_grid2d(4, 5);
  std::ostringstream out;
  write_chaco(g, out);
  std::istringstream in(out.str());
  const auto g2 = read_chaco(in);
  EXPECT_EQ(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g2.degree(v), g.degree(v));
  }
}

TEST(ChacoIo, RoundTripWeighted) {
  const auto g = with_random_weights(make_torus(4, 4), 1.0, 9.0, 5);
  std::ostringstream out;
  write_chaco(g, out);
  std::istringstream in(out.str());
  const auto g2 = read_chaco(in);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      EXPECT_NEAR(g2.edge_weight(v, u), g.edge_weight(v, u), 1e-9);
    }
  }
}

TEST(EdgeListIo, ReadsZeroIndexedPairs) {
  std::istringstream in("0 1\n1 2 5.5\n# comment\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 5.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
}

TEST(EdgeListIo, RoundTrip) {
  const auto g = with_random_weights(make_cycle(9), 0.5, 3.5, 2);
  std::ostringstream out;
  write_edge_list(g, out);
  std::istringstream in(out.str());
  const auto g2 = read_edge_list(in);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_NEAR(g2.total_edge_weight(), g.total_edge_weight(), 1e-9);
}

TEST(EdgeListIo, ErrorOnGarbage) {
  std::istringstream in("0 x\n");
  EXPECT_THROW(read_edge_list(in), Error);
}

TEST(EdgeListIo, HardenedAgainstHostileLines) {
  std::istringstream self_loop("3 3\n");
  EXPECT_THROW(read_edge_list(self_loop), Error);
  std::istringstream nan_w("0 1 nan\n");
  EXPECT_THROW(read_edge_list(nan_w), Error);
  // A single bogus endpoint must not imply a multi-gigabyte vertex count.
  IoLimits limits;
  limits.max_vertices = 100;
  std::istringstream huge("0 99999999\n");
  EXPECT_THROW(read_edge_list(huge, limits), Error);
  limits.max_edges = 2;
  std::istringstream many("0 1\n1 2\n2 3\n");
  EXPECT_THROW(read_edge_list(many, limits), Error);
}

TEST(PartitionIo, RoundTrip) {
  const std::vector<int> parts = {0, 2, 1, 1, 0};
  std::ostringstream out;
  write_partition(parts, out);
  std::istringstream in(out.str());
  EXPECT_EQ(read_partition(in), parts);
}

TEST(PartitionIo, ErrorOnNegative) {
  std::istringstream in("0\n-1\n");
  EXPECT_THROW(read_partition(in), Error);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_chaco_file("/nonexistent/path.graph"), Error);
  EXPECT_THROW(read_partition_file("/nonexistent/path.part"), Error);
}

}  // namespace
}  // namespace ffp
