#include "solver/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "benchlib/methods.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

const Graph& grid() {
  static const Graph g = make_grid2d(8, 8);
  return g;
}

SolverRequest small_request(int k = 4, std::uint64_t seed = 5) {
  SolverRequest request;
  request.k = k;
  request.objective = ObjectiveKind::MinMaxCut;
  request.stop = StopCondition::after_steps(300);
  request.seed = seed;
  return request;
}

TEST(SolverOptions, ParsesKeyValuePairs) {
  const auto o = SolverOptions::parse("alpha=1.5, beta = x ,gamma=true");
  EXPECT_TRUE(o.has("alpha"));
  EXPECT_DOUBLE_EQ(o.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(o.get_string("beta", ""), "x");
  EXPECT_TRUE(o.get_bool("gamma", false));
  EXPECT_FALSE(o.has("delta"));
  EXPECT_EQ(o.get_int("delta", 42), 42);
}

TEST(SolverOptions, EmptyStringMeansNoOptions) {
  const auto o = SolverOptions::parse("");
  EXPECT_TRUE(o.empty());
  EXPECT_TRUE(o.unread_keys().empty());
}

TEST(SolverOptions, RejectsMalformedPairs) {
  EXPECT_THROW(SolverOptions::parse("noequals"), Error);
  EXPECT_THROW(SolverOptions::parse("=value"), Error);
  EXPECT_THROW(SolverOptions::parse("a=1,a=2"), Error);
}

TEST(SolverOptions, WhitespaceSeparatedPairsAndCanonicalText) {
  const auto o = SolverOptions::parse("threads=2 batch=1");
  EXPECT_EQ(o.get_int("threads", 0), 2);
  EXPECT_EQ(o.get_int("batch", 0), 1);
  // Duplicates are rejected across separator styles too.
  EXPECT_THROW(SolverOptions::parse("a=1 a=2"), Error);
  EXPECT_THROW(SolverOptions::parse("a=1, a=2"), Error);
  // canonical_text: sorted keys, no whitespace, one separator style.
  EXPECT_EQ(SolverOptions::parse(" b = 2 , a = 1 ").canonical_text(),
            "a=1,b=2");
  EXPECT_EQ(SolverOptions::parse("").canonical_text(), "");
}

TEST(SolverOptions, TypedGettersValidate) {
  const auto o = SolverOptions::parse("n=abc,b=maybe");
  EXPECT_THROW(o.get_int("n", 0), Error);
  EXPECT_THROW(o.get_double("n", 0.0), Error);
  EXPECT_THROW(o.get_bool("b", false), Error);
}

TEST(SolverOptions, TracksUnreadKeys) {
  const auto o = SolverOptions::parse("read=1,unread=2");
  (void)o.get_int("read", 0);
  const auto unread = o.unread_keys();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "unread");
}

TEST(Registry, BuiltinHasAllFamilies) {
  const auto names = SolverRegistry::builtin().names();
  for (const char* expected :
       {"fusion_fission", "annealing", "ant_colony", "multilevel", "spectral",
        "linear", "percolation"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) != names.end())
        << expected;
  }
}

TEST(Registry, UnknownNameThrowsListingAvailable) {
  try {
    (void)make_solver("does_not_exist");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fusion_fission"), std::string::npos);
  }
}

TEST(Registry, UnknownOptionKeyThrows) {
  EXPECT_THROW(make_solver("fusion_fission:not_an_option=1"), Error);
  EXPECT_THROW(make_solver("linear:typo=2"), Error);
}

TEST(Registry, UnknownKeyDetectionSurvivesOptionsReuse) {
  // 'cooling' is an annealing option; trying the same SolverOptions against
  // fusion_fission afterwards must still reject it.
  const auto o = SolverOptions::parse("cooling=0.9");
  const auto& reg = SolverRegistry::builtin();
  EXPECT_NO_THROW(reg.create("annealing", o));
  EXPECT_THROW(reg.create("fusion_fission", o), Error);
  EXPECT_NO_THROW(reg.create("annealing", o));
}

TEST(Registry, LinearRejectsUnsupportedArity) {
  EXPECT_THROW(make_solver("linear:arity=3"), Error);
  EXPECT_THROW(make_solver("linear:arity=0,kl=true"), Error);
  EXPECT_NO_THROW(make_solver("linear:arity=4,kl=true"));
}

TEST(Registry, BadEnumValueThrowsListingChoices) {
  try {
    (void)make_solver("spectral:engine=cg");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("lanczos"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rqi"), std::string::npos);
  }
}

TEST(Registry, SpecWithoutOptionsUsesDefaults) {
  const auto solver = make_solver("multilevel");
  EXPECT_EQ(solver->name(), "multilevel");
  EXPECT_FALSE(solver->is_metaheuristic());
}

TEST(Registry, MetaheuristicFlagMatchesFamily) {
  EXPECT_TRUE(make_solver("fusion_fission")->is_metaheuristic());
  EXPECT_TRUE(make_solver("annealing")->is_metaheuristic());
  EXPECT_TRUE(make_solver("ant_colony")->is_metaheuristic());
  EXPECT_FALSE(make_solver("spectral")->is_metaheuristic());
  EXPECT_FALSE(make_solver("linear")->is_metaheuristic());
  EXPECT_FALSE(make_solver("percolation")->is_metaheuristic());
}

TEST(Registry, EverySolverProducesValidKPartition) {
  for (const auto& name : SolverRegistry::builtin().names()) {
    const auto solver = make_solver(name);
    const auto res = solver->run(grid(), small_request());
    testing::expect_valid_partition(res.best, 4);
    EXPECT_DOUBLE_EQ(
        res.best_value,
        objective(ObjectiveKind::MinMaxCut).evaluate(res.best))
        << name;
  }
}

TEST(Registry, OptionsChangeBehavior) {
  // KL-refined linear should be at least as good on Cut as plain linear.
  SolverRequest request = small_request();
  request.objective = ObjectiveKind::Cut;
  const auto plain = make_solver("linear")->run(grid(), request);
  const auto kl = make_solver("linear:arity=2,kl=true")->run(grid(), request);
  EXPECT_LE(kl.best_value, plain.best_value);
}

TEST(Registry, SameSeedSameResult) {
  for (const char* spec : {"fusion_fission", "annealing", "multilevel"}) {
    const auto solver = make_solver(spec);
    const auto a = solver->run(grid(), small_request(4, 99));
    const auto b = solver->run(grid(), small_request(4, 99));
    EXPECT_TRUE(std::equal(a.best.assignment().begin(),
                           a.best.assignment().end(),
                           b.best.assignment().begin()))
        << spec;
  }
}

TEST(Registry, Table1RowsAreRegistryBuilt) {
  const auto methods = table1_methods();
  ASSERT_EQ(methods.size(), 17u);
  for (const auto& m : methods) {
    EXPECT_FALSE(m.solver_spec.empty()) << m.name;
    ASSERT_NE(m.solver, nullptr) << m.name;
    EXPECT_EQ(m.is_metaheuristic, m.solver->is_metaheuristic()) << m.name;
    // The spec reconstructs an equivalent solver.
    const auto rebuilt = make_solver(m.solver_spec);
    EXPECT_EQ(rebuilt->name(), m.solver->name()) << m.name;
  }
  EXPECT_EQ(table1_spec("Fusion Fission"), "fusion_fission");
  EXPECT_THROW(table1_spec("Does Not Exist"), Error);
}

TEST(Registry, MethodRowAndRawSpecAgree) {
  // A Table-1 row run through benchlib must equal the registry solver run
  // with the same request — no duplicated construction logic.
  const auto methods = table1_methods();
  const auto& row = method_by_name(methods, "Multilevel (Oct)");
  MethodContext ctx;
  ctx.k = 4;
  ctx.seed = 31;
  const auto via_row = row.run(grid(), ctx);

  SolverRequest request = small_request(4, 31);
  const auto via_registry = make_solver(row.solver_spec)->run(grid(), request);
  EXPECT_TRUE(std::equal(via_row.assignment().begin(),
                         via_row.assignment().end(),
                         via_registry.best.assignment().begin()));
}

TEST(Registry, CanonicalSpecNormalizesEquivalentForms) {
  const auto& reg = SolverRegistry::builtin();
  EXPECT_EQ(reg.canonical_spec("fusion_fission"), "fusion_fission");
  EXPECT_EQ(reg.canonical_spec("  fusion_fission  "), "fusion_fission");
  EXPECT_EQ(reg.canonical_spec("fusion_fission:"), "fusion_fission");
  // Key order, cosmetic whitespace, trailing commas, and the whitespace
  // name/options separator all collapse to one canonical string.
  const std::string canonical = "fusion_fission:batch=4,threads=2";
  EXPECT_EQ(reg.canonical_spec("fusion_fission:threads=2,batch=4"), canonical);
  EXPECT_EQ(reg.canonical_spec("fusion_fission: batch=4 , threads=2 ,"),
            canonical);
  EXPECT_EQ(reg.canonical_spec("fusion_fission threads=2 batch=4"), canonical);
  EXPECT_EQ(reg.canonical_spec("spectral:kl=true,engine=rqi"),
            "spectral:engine=rqi,kl=true");
}

TEST(Registry, CanonicalSpecValidatesEndToEnd) {
  const auto& reg = SolverRegistry::builtin();
  EXPECT_THROW(reg.canonical_spec("no_such_solver"), Error);
  EXPECT_THROW(reg.canonical_spec("fusion_fission:bogus_key=1"), Error);
  EXPECT_THROW(reg.canonical_spec("fusion_fission:threads=1,threads=2"),
               Error);
  EXPECT_THROW(reg.canonical_spec("spectral:engine=warp"), Error);  // bad value
  // A multi-word non-spec stays one (unknown) name, not a key=value error.
  EXPECT_THROW(reg.canonical_spec("Fusion Fission"), Error);
}

TEST(Registry, WhitespaceSpecFormResolves) {
  const auto solver = make_solver("fusion_fission threads=2");
  EXPECT_EQ(solver->name(), "fusion_fission");
}

}  // namespace
}  // namespace ffp
