#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ffp {
namespace {

TEST(Components, SingleComponent) {
  const auto g = make_path(5);
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 1);
  for (int label : c.label) EXPECT_EQ(label, 0);
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, TwoComponents) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {2, 3, 1}};
  const auto g = Graph::from_edges(4, edges);
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 2);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[2], c.label[3]);
  EXPECT_NE(c.label[0], c.label[2]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, IsolatedVertices) {
  const auto g = Graph::from_edges(3, {});
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 3);
}

TEST(Components, GroupsPartitionVertices) {
  const std::vector<WeightedEdge> edges = {{0, 2, 1}, {1, 3, 1}};
  const auto g = Graph::from_edges(5, edges);
  const auto groups = connected_components(g).groups();
  std::size_t total = 0;
  for (const auto& grp : groups) total += grp.size();
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(Components, EmptyGraphConnected) {
  EXPECT_TRUE(is_connected(Graph::from_edges(0, {})));
}

TEST(Bfs, DistancesOnPath) {
  const auto g = make_path(6);
  const auto d = bfs_distances(g, 0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(d[static_cast<std::size_t>(i)], i);
  }
}

TEST(Bfs, UnreachableIsMinusOne) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}};
  const auto g = Graph::from_edges(3, edges);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], -1);
}

TEST(Bfs, MultiSourceTakesNearest) {
  const auto g = make_path(10);
  const VertexId sources[2] = {0, 9};
  const auto d = bfs_distances(g, std::span<const VertexId>(sources, 2));
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[9], 0);
  EXPECT_EQ(d[4], 4);
  EXPECT_EQ(d[5], 4);
}

TEST(Bfs, RejectsBadSource) {
  const auto g = make_path(3);
  EXPECT_THROW(bfs_distances(g, 7), Error);
}

TEST(PseudoPeripheral, PathEndpoints) {
  const auto g = make_path(11);
  const auto [a, b] = pseudo_peripheral_pair(g, 5);
  // Both should be actual path endpoints.
  EXPECT_TRUE(a == 0 || a == 10);
  const auto d = bfs_distances(g, a);
  EXPECT_GE(d[static_cast<std::size_t>(b)], 5);  // far apart
}

TEST(PseudoPeripheral, TwoVertices) {
  const auto g = make_path(2);
  const auto [a, b] = pseudo_peripheral_pair(g, 0);
  EXPECT_NE(a, b);
}

TEST(InducedSubgraph, ExtractsEdgesAndWeights) {
  //  0-1-2-3 path with increasing weights; take {1,2,3}.
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}};
  const auto g = Graph::from_edges(4, edges);
  const VertexId verts[3] = {1, 2, 3};
  const auto sub = induced_subgraph(g, std::span<const VertexId>(verts, 3));
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 2);
  EXPECT_DOUBLE_EQ(sub.graph.edge_weight(0, 1), 2.0);  // old (1,2)
  EXPECT_DOUBLE_EQ(sub.graph.edge_weight(1, 2), 3.0);  // old (2,3)
  EXPECT_EQ(sub.to_parent[0], 1);
  EXPECT_EQ(sub.to_parent[2], 3);
}

TEST(InducedSubgraph, PreservesVertexWeights) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}};
  const auto g = Graph::from_edges(3, edges, {5.0, 6.0, 7.0});
  const VertexId verts[2] = {2, 0};
  const auto sub = induced_subgraph(g, std::span<const VertexId>(verts, 2));
  EXPECT_DOUBLE_EQ(sub.graph.vertex_weight(0), 7.0);
  EXPECT_DOUBLE_EQ(sub.graph.vertex_weight(1), 5.0);
  EXPECT_EQ(sub.graph.num_edges(), 0);
}

TEST(InducedSubgraph, RejectsDuplicates) {
  const auto g = make_path(4);
  const VertexId verts[2] = {1, 1};
  EXPECT_THROW(induced_subgraph(g, std::span<const VertexId>(verts, 2)), Error);
}

TEST(InducedSubgraph, DisconnectedSubsetIsFine) {
  const auto g = make_path(5);
  const VertexId verts[2] = {0, 4};
  const auto sub = induced_subgraph(g, std::span<const VertexId>(verts, 2));
  EXPECT_EQ(sub.graph.num_edges(), 0);
  EXPECT_FALSE(is_connected(sub.graph));
}

}  // namespace
}  // namespace ffp
