#include "service/thread_budget.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ffp {
namespace {

TEST(ThreadBudget, LeaseGrantsUpToAvailable) {
  ThreadBudget budget(4);
  EXPECT_EQ(budget.total(), 4u);
  EXPECT_EQ(budget.available(), 4u);

  WorkerLease a = budget.lease(3);
  EXPECT_EQ(a.granted(), 3u);
  EXPECT_EQ(budget.in_use(), 3u);

  WorkerLease b = budget.lease(3);  // only 1 left
  EXPECT_EQ(b.granted(), 1u);
  EXPECT_EQ(budget.available(), 0u);

  WorkerLease c = budget.lease(2);  // exhausted: non-blocking 0 grant
  EXPECT_EQ(c.granted(), 0u);
}

TEST(ThreadBudget, ReleaseReturnsSlots) {
  ThreadBudget budget(2);
  {
    WorkerLease a = budget.lease(2);
    EXPECT_EQ(a.granted(), 2u);
    EXPECT_EQ(budget.available(), 0u);
  }
  EXPECT_EQ(budget.available(), 2u);

  WorkerLease b = budget.lease(1);
  b.release();
  b.release();  // idempotent
  EXPECT_EQ(budget.available(), 2u);
}

TEST(ThreadBudget, MoveTransfersOwnership) {
  ThreadBudget budget(3);
  WorkerLease a = budget.lease(2);
  WorkerLease b = std::move(a);
  EXPECT_EQ(a.granted(), 0u);
  EXPECT_EQ(b.granted(), 2u);
  EXPECT_EQ(budget.in_use(), 2u);
  b = budget.lease(1);  // move-assign releases the old grant first
  EXPECT_EQ(budget.in_use(), 1u);
}

TEST(ThreadBudget, PeakTracksHighWaterMark) {
  ThreadBudget budget(8);
  { WorkerLease a = budget.lease(5); }
  { WorkerLease b = budget.lease(2); }
  EXPECT_EQ(budget.in_use(), 0u);
  EXPECT_EQ(budget.peak_in_use(), 5u);
  EXPECT_LE(budget.peak_in_use(), budget.total());
}

TEST(ThreadBudget, NestedLeasesNeverBlockOrOverflow) {
  // The portfolio-inside-scheduler shape: an outer lease takes most of the
  // budget, inner leases get what's left (possibly zero) without waiting.
  ThreadBudget budget(4);
  WorkerLease outer = budget.lease(3);
  WorkerLease inner1 = budget.lease(4);
  WorkerLease inner2 = budget.lease(4);
  EXPECT_EQ(inner1.granted(), 1u);
  EXPECT_EQ(inner2.granted(), 0u);
  EXPECT_EQ(budget.in_use(), 4u);
  EXPECT_EQ(budget.peak_in_use(), 4u);
}

TEST(ThreadBudget, AcquireBlocksUntilFree) {
  ThreadBudget budget(1);
  WorkerLease held = budget.lease(1);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    WorkerLease slot = budget.acquire(1);
    acquired.store(true);
  });
  // The waiter must not get through while the slot is held.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  held.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(budget.in_use(), 0u);
}

TEST(ThreadBudget, ManyConcurrentAcquirersRespectTheCap) {
  ThreadBudget budget(3);
  std::atomic<int> active{0};
  std::atomic<int> max_active{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 12; ++i) {
    threads.emplace_back([&] {
      WorkerLease slot = budget.acquire(1);
      const int now = ++active;
      int seen = max_active.load();
      while (now > seen && !max_active.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      --active;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_active.load(), 3);
  EXPECT_LE(budget.peak_in_use(), budget.total());
  EXPECT_EQ(budget.in_use(), 0u);
}

TEST(ThreadBudget, ZeroMeansHardwareConcurrency) {
  ThreadBudget budget(0);
  EXPECT_GE(budget.total(), 1u);
}

}  // namespace
}  // namespace ffp
