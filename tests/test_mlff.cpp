// The multilevel×fusion-fission hybrid: project_partition's conservation
// contract, the mlff pipeline's validity/determinism guarantees, and the
// ffp::api cache behavior of mlff specs.
#include "multilevel/mlff.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ffp/api.hpp"
#include "graph/generators.hpp"
#include "solver/registry.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

std::vector<int> assignment_of(const Partition& p) {
  return {p.assignment().begin(), p.assignment().end()};
}

// ------------------------------------------------- project_partition ----

TEST(ProjectPartition, IdentityOnEmptyChain) {
  const std::vector<CoarseLevel> chain;
  const std::vector<int> parts = {0, 2, 1, 1, 0};
  const auto out = project_partition(chain, 0, parts);
  EXPECT_EQ(out, parts);
}

TEST(ProjectPartition, PreservesWeightsAndCut) {
  // Contraction sums pair weights and combines parallel edges (merge_into
  // semantics), so a coarse partition and its projection must agree on
  // every part's vertex weight and on the cut weight between every pair.
  const auto g = with_random_weights(make_grid2d(12, 12), 1.0, 4.0, 9);
  CoarsenOptions opt;
  opt.min_vertices = 20;
  const auto chain = coarsen_chain(g, opt);
  ASSERT_FALSE(chain.empty());
  const Graph& coarse = chain.back().coarse;

  std::vector<int> coarse_parts(
      static_cast<std::size_t>(coarse.num_vertices()));
  for (std::size_t v = 0; v < coarse_parts.size(); ++v) {
    coarse_parts[v] = static_cast<int>(v % 3);
  }
  const auto cp = Partition::from_assignment(coarse, coarse_parts, 3);

  const auto fine_parts = project_partition(chain, chain.size(), coarse_parts);
  ASSERT_EQ(fine_parts.size(), static_cast<std::size_t>(g.num_vertices()));
  const auto fp = Partition::from_assignment(g, fine_parts, 3);

  EXPECT_NEAR(fp.edge_cut(), cp.edge_cut(), 1e-9);
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(fp.part_vertex_weight(q), cp.part_vertex_weight(q), 1e-9)
        << "part " << q;
    EXPECT_NEAR(fp.part_cut(q), cp.part_cut(q), 1e-9) << "part " << q;
  }
}

TEST(ProjectPartition, KPartsSurviveProjection) {
  const auto g = make_torus(16, 16);
  CoarsenOptions opt;
  opt.min_vertices = 32;
  const auto chain = coarsen_chain(g, opt);
  ASSERT_FALSE(chain.empty());
  const int nc = chain.back().coarse.num_vertices();
  const int k = 8;
  std::vector<int> coarse_parts(static_cast<std::size_t>(nc));
  for (int v = 0; v < nc; ++v) {
    coarse_parts[static_cast<std::size_t>(v)] = v % k;
  }
  const auto fine = project_partition(chain, chain.size(), coarse_parts);
  std::set<int> ids(fine.begin(), fine.end());
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(k));
  // Every fine vertex inherits its coarse image's id — spot-check through
  // the prolong path, which implements the same piecewise-constant map.
  std::vector<double> coarse_vals(coarse_parts.begin(), coarse_parts.end());
  const auto prolonged = prolong_to_finest(chain, chain.size(), coarse_vals);
  for (std::size_t v = 0; v < fine.size(); ++v) {
    EXPECT_EQ(fine[v], static_cast<int>(prolonged[v]));
  }
}

TEST(ProjectPartition, RejectsSizeMismatch) {
  const auto g = make_grid2d(10, 10);
  CoarsenOptions opt;
  opt.min_vertices = 16;
  const auto chain = coarsen_chain(g, opt);
  ASSERT_FALSE(chain.empty());
  const std::vector<int> wrong(3, 0);
  EXPECT_THROW(project_partition(chain, chain.size(), wrong), Error);
}

// ----------------------------------------------------- mlff pipeline ----

Graph family_graph(const std::string& family) {
  if (family == "grid") return make_grid2d(40, 40);
  if (family == "torus") return make_torus(40, 40);
  if (family == "geometric") return make_random_geometric(1600, 0.055, 5);
  return make_power_law(1600, 6.0, 2.5, 5);
}

TEST(Mlff, ValidPartitionAndValueMatchesObjective) {
  const auto g = make_grid2d(40, 40);
  MlffOptions opt;
  opt.coarse_n = 128;
  opt.seed = 7;
  const auto res =
      mlff_partition(g, 8, opt, StopCondition::after_steps(3000));
  ffp::testing::expect_valid_partition(res.best, 8);
  EXPECT_GT(res.levels, 0);
  EXPECT_LE(res.coarse_vertices, 256);  // matching halves at most
  EXPECT_NEAR(objective(opt.objective).evaluate(res.best), res.best_value,
              1e-9);
}

TEST(Mlff, RefinementImprovesOnRawProjection) {
  const auto g = make_grid2d(40, 40);
  MlffOptions opt;
  opt.coarse_n = 128;
  opt.seed = 7;
  MlffOptions raw = opt;
  raw.refine_steps = 0;
  const auto stop = StopCondition::after_steps(3000);
  const auto refined = mlff_partition(g, 8, opt, stop);
  const auto unrefined = mlff_partition(g, 8, raw, stop);
  EXPECT_GT(refined.refine_moves, 0);
  EXPECT_LE(refined.best_value, unrefined.best_value);
}

TEST(Mlff, DeterministicAcrossThreadCountsAllFamilies) {
  for (const char* family : {"grid", "torus", "geometric", "powerlaw"}) {
    const Graph g = family_graph(family);
    std::vector<int> reference;
    for (const int threads : {1, 4}) {
      MlffOptions opt;
      opt.seed = 2006;
      opt.threads = threads;
      const auto res =
          mlff_partition(g, 16, opt, StopCondition::after_steps(2000));
      if (reference.empty()) {
        reference = assignment_of(res.best);
      } else {
        EXPECT_EQ(reference, assignment_of(res.best))
            << family << " t=" << threads;
      }
    }
  }
}

TEST(Mlff, SmallGraphSkipsCoarsening) {
  // Below the coarse target the chain is empty and mlff degenerates to
  // pure fusion-fission on the input graph.
  const auto g = make_grid2d(8, 8);
  MlffOptions opt;
  opt.seed = 3;
  const auto res = mlff_partition(g, 4, opt, StopCondition::after_steps(800));
  EXPECT_EQ(res.levels, 0);
  EXPECT_EQ(res.coarse_vertices, g.num_vertices());
  ffp::testing::expect_valid_partition(res.best, 4);
}

TEST(Mlff, RegisteredInRegistryAndSpecRoundTrips) {
  const auto& reg = SolverRegistry::builtin();
  ASSERT_TRUE(reg.contains("mlff"));
  const auto solver = reg.create_from_spec(
      "mlff:coarse_n=128,refine_steps=1000,matching=random,threads=2,batch=8");
  EXPECT_EQ(solver->name(), "mlff");
  EXPECT_TRUE(solver->is_metaheuristic());
  EXPECT_THROW(reg.create_from_spec("mlff:bogus=1"), Error);
  // Canonicalization sorts and validates the full option set.
  EXPECT_EQ(reg.canonical_spec("mlff: threads=2 , coarse_n=128"),
            "mlff:coarse_n=128,threads=2");
}

TEST(Mlff, SolverRunHonorsRequest) {
  const auto g = make_grid2d(32, 32);
  SolverRequest request;
  request.k = 8;
  request.objective = ObjectiveKind::NormalizedCut;
  request.stop = StopCondition::after_steps(2000);
  request.seed = 11;
  const auto solver = make_solver("mlff:coarse_n=128");
  const auto res = solver->run(g, request);
  ffp::testing::expect_valid_partition(res.best, 8);
  EXPECT_NEAR(objective(ObjectiveKind::NormalizedCut).evaluate(res.best),
              res.best_value, 1e-9);
  EXPECT_GT(res.stat("levels"), 0.0);
  EXPECT_GT(res.stat("steps"), 0.0);
}

// ------------------------------------------------------- api + cache ----

TEST(Mlff, ApiRepeatSubmissionHitsResultCache) {
  api::EngineOptions options;
  options.cache_capacity = 4;
  api::Engine engine(options);
  const api::Problem problem = api::Problem::generated("grid2d:24,24");
  api::SolveSpec spec;
  spec.method = "mlff:coarse_n=128,threads=2";
  spec.k = 8;
  spec.budget_ms = 50.0;  // threads>0 → deterministic step budget derived

  const auto resolved = spec.resolve();
  EXPECT_TRUE(resolved.metaheuristic);
  EXPECT_TRUE(resolved.deterministic)
      << "mlff threads/batch keys must trigger the resolved_steps rule";
  EXPECT_GT(resolved.steps, 0);

  const auto first = engine.solve(problem, spec);
  const auto again = engine.solve(problem, spec);
  EXPECT_EQ(assignment_of(first.best), assignment_of(again.best));
  EXPECT_EQ(engine.cache_counters().hits, 1);
  EXPECT_EQ(engine.cache_counters().misses, 1);

  // Equivalent spelling of the same spec canonicalizes to the same key.
  api::SolveSpec same = spec;
  same.method = "mlff: threads=2 , coarse_n=128";
  engine.solve(problem, same);
  EXPECT_EQ(engine.cache_counters().hits, 2);

  // A different option value is a different result identity.
  api::SolveSpec other = spec;
  other.method = "mlff:coarse_n=256,threads=2";
  engine.solve(problem, other);
  EXPECT_EQ(engine.cache_counters().misses, 2);
}

}  // namespace
}  // namespace ffp
