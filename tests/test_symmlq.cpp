#include "linalg/symmlq.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ffp {
namespace {

/// Dense symmetric operator for ground-truth comparisons.
class DenseOperator final : public SymmetricOperator {
 public:
  explicit DenseOperator(std::vector<std::vector<double>> a) : a_(std::move(a)) {}
  VertexId dim() const override { return static_cast<VertexId>(a_.size()); }
  void apply(std::span<const double> x, std::span<double> y) const override {
    for (std::size_t i = 0; i < a_.size(); ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < a_.size(); ++j) acc += a_[i][j] * x[j];
      y[i] = acc;
    }
  }

 private:
  std::vector<std::vector<double>> a_;
};

/// Gaussian elimination with partial pivoting (test oracle only).
std::vector<double> dense_solve(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= a[i][j] * x[j];
    x[i] = acc / a[i][i];
  }
  return x;
}

std::vector<std::vector<double>> random_symmetric(int n, std::uint64_t seed,
                                                  double diag_boost) {
  Rng rng(seed);
  std::vector<std::vector<double>> a(static_cast<std::size_t>(n),
                                     std::vector<double>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
      a[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = v;
    }
    a[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] += diag_boost;
  }
  return a;
}

TEST(Symmlq, SolvesSpdSystem) {
  const int n = 20;
  auto a = random_symmetric(n, 3, 8.0);  // diagonally dominant → SPD
  Rng rng(4);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& bi : b) bi = rng.uniform(-2.0, 2.0);

  const DenseOperator op(a);
  SymmlqOptions opt;
  const auto r = symmlq_solve(op, b, opt);
  EXPECT_TRUE(r.converged);
  const auto expect = dense_solve(a, b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(r.x[static_cast<std::size_t>(i)],
                expect[static_cast<std::size_t>(i)], 1e-6);
  }
}

TEST(Symmlq, SolvesIndefiniteSystem) {
  // Mix positive and negative eigenvalues: no diagonal boost, explicit
  // +/- diagonal.
  const int n = 16;
  auto a = random_symmetric(n, 5, 0.0);
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] +=
        (i % 2 == 0) ? 6.0 : -6.0;
  }
  Rng rng(6);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& bi : b) bi = rng.uniform(-1.0, 1.0);

  const DenseOperator op(a);
  SymmlqOptions opt;
  const auto r = symmlq_solve(op, b, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.relative_residual, 1e-7);
  const auto expect = dense_solve(a, b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(r.x[static_cast<std::size_t>(i)],
                expect[static_cast<std::size_t>(i)], 1e-5);
  }
}

TEST(Symmlq, ShiftMovesTheSystem) {
  // (A − shift I) x = b via the shift option equals solving the shifted
  // dense matrix directly.
  const int n = 12;
  auto a = random_symmetric(n, 7, 5.0);
  const double shift = 1.25;
  Rng rng(8);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& bi : b) bi = rng.uniform(-1.0, 1.0);

  const DenseOperator op(a);
  SymmlqOptions opt;
  opt.shift = shift;
  const auto r = symmlq_solve(op, b, opt);

  auto shifted = a;
  for (int i = 0; i < n; ++i) {
    shifted[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] -= shift;
  }
  const auto expect = dense_solve(shifted, b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(r.x[static_cast<std::size_t>(i)],
                expect[static_cast<std::size_t>(i)], 1e-6);
  }
}

TEST(Symmlq, ZeroRhsGivesZeroSolution) {
  const DenseOperator op(random_symmetric(6, 9, 4.0));
  const std::vector<double> b(6, 0.0);
  const auto r = symmlq_solve(op, b, {});
  EXPECT_TRUE(r.converged);
  for (double xi : r.x) EXPECT_DOUBLE_EQ(xi, 0.0);
}

TEST(Symmlq, NearSingularShiftStillUseful) {
  // Shift close to a Laplacian eigenvalue: the solve must not produce NaNs
  // (this is RQI's hot path; the solution blows up along the eigvector,
  // which is fine — it must stay finite and parallel to it).
  const auto g = make_path(10);
  struct LapOp final : SymmetricOperator {
    const Graph* g;
    VertexId dim() const override { return g->num_vertices(); }
    void apply(std::span<const double> x, std::span<double> y) const override {
      for (VertexId v = 0; v < g->num_vertices(); ++v) {
        double acc = g->weighted_degree(v) * x[static_cast<std::size_t>(v)];
        const auto nbrs = g->neighbors(v);
        const auto ws = g->neighbor_weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          acc -= ws[i] * x[static_cast<std::size_t>(nbrs[i])];
        }
        y[static_cast<std::size_t>(v)] = acc;
      }
    }
  } op;
  op.g = &g;
  const double lambda2 = 4.0 * std::pow(std::sin(M_PI / 20.0), 2);
  std::vector<double> b(10, 1.0);
  b[0] = 2.0;  // not exactly the constant vector
  SymmlqOptions opt;
  opt.shift = lambda2 + 1e-6;
  opt.max_iterations = 200;
  const auto r = symmlq_solve(op, b, opt);
  for (double xi : r.x) {
    EXPECT_TRUE(std::isfinite(xi));
  }
}

TEST(Symmlq, RejectsSizeMismatch) {
  const DenseOperator op(random_symmetric(4, 1, 4.0));
  const std::vector<double> b(3, 1.0);
  EXPECT_THROW(symmlq_solve(op, b, {}), Error);
}

TEST(Symmlq, ReportsIterations) {
  const DenseOperator op(random_symmetric(10, 2, 6.0));
  const std::vector<double> b(10, 1.0);
  const auto r = symmlq_solve(op, b, {});
  EXPECT_GT(r.iterations, 0);
  EXPECT_LE(r.iterations, 50);
}

}  // namespace
}  // namespace ffp
