#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"

namespace ffp {
namespace {

TEST(Generators, Grid2dCounts) {
  const auto g = make_grid2d(4, 6);
  EXPECT_EQ(g.num_vertices(), 24);
  // Edges: 4*5 horizontal + 3*6 vertical.
  EXPECT_EQ(g.num_edges(), 4 * 5 + 3 * 6);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Grid2dCornerDegrees) {
  const auto g = make_grid2d(3, 3);
  EXPECT_EQ(g.degree(0), 2);  // corner
  EXPECT_EQ(g.degree(4), 4);  // center
}

TEST(Generators, Grid3dCounts) {
  const auto g = make_grid3d(3, 4, 5);
  EXPECT_EQ(g.num_vertices(), 60);
  EXPECT_EQ(g.num_edges(), 2 * 4 * 5 + 3 * 3 * 5 + 3 * 4 * 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, TorusIsRegular) {
  const auto g = make_torus(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 2 * 20);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), 4);
  }
}

TEST(Generators, TorusRejectsTooSmall) {
  EXPECT_THROW(make_torus(2, 5), Error);
}

TEST(Generators, PathAndCycle) {
  EXPECT_EQ(make_path(7).num_edges(), 6);
  EXPECT_EQ(make_cycle(7).num_edges(), 7);
  for (VertexId v = 0; v < 7; ++v) {
    EXPECT_EQ(make_cycle(7).degree(v), 2);
  }
}

TEST(Generators, CompleteGraph) {
  const auto g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5);
}

TEST(Generators, Star) {
  const auto g = make_star(9);
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.degree(0), 9);
  EXPECT_EQ(g.degree(5), 1);
}

TEST(Generators, BarbellHasBridgeStructure) {
  const auto g = make_barbell(5, 2);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_TRUE(is_connected(g));
  // Clique edges 2*C(5,2)=20 plus path edges 3.
  EXPECT_EQ(g.num_edges(), 23);
}

TEST(Generators, BarbellNoBridgeVertices) {
  const auto g = make_barbell(4, 0);
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_EQ(g.num_edges(), 13);  // 2*6 + 1 connecting edge
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomGeometricDeterministic) {
  const auto a = make_random_geometric(60, 0.25, 9);
  const auto b = make_random_geometric(60, 0.25, 9);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  const auto c = make_random_geometric(60, 0.25, 10);
  // Overwhelmingly likely to differ.
  EXPECT_NE(a.num_edges(), c.num_edges());
}

TEST(Generators, RandomGeometricNoIsolatedVertices) {
  const auto g = make_random_geometric(100, 0.05, 4);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.degree(v), 1) << "vertex " << v;
  }
}

TEST(Generators, PowerLawAverageDegreeInRange) {
  const auto g = make_power_law(400, 6.0, 2.5, 21);
  const double avg = 2.0 * g.num_edges() / g.num_vertices();
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 12.0);
}

TEST(Generators, PowerLawHasSkewedDegrees) {
  const auto g = make_power_law(500, 4.0, 2.2, 22);
  std::int64_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  EXPECT_GT(max_deg, 4 * 2);  // hub far above the average
}

TEST(Generators, RandomGraphExactEdgeCount) {
  const auto g = make_random_graph(30, 100, 3);
  EXPECT_EQ(g.num_edges(), 100);
}

TEST(Generators, RandomGraphRejectsTooMany) {
  EXPECT_THROW(make_random_graph(4, 7, 1), Error);  // max is 6
}

TEST(Generators, Caterpillar) {
  const auto g = make_caterpillar(5, 3);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 4 + 15);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, WithRandomWeightsPreservesStructure) {
  const auto base = make_grid2d(5, 5);
  const auto g = with_random_weights(base, 2.0, 4.0, 8);
  EXPECT_EQ(g.num_edges(), base.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto ws = g.neighbor_weights(v);
    for (double w : ws) {
      EXPECT_GE(w, 2.0);
      EXPECT_LT(w, 4.0);
    }
  }
}

TEST(Generators, WithRandomWeightsDeterministic) {
  const auto base = make_grid2d(4, 4);
  const auto a = with_random_weights(base, 0.0, 1.0, 5);
  const auto b = with_random_weights(base, 0.0, 1.0, 5);
  EXPECT_DOUBLE_EQ(a.total_edge_weight(), b.total_edge_weight());
}

TEST(Generators, RejectsBadParameters) {
  EXPECT_THROW(make_grid2d(0, 3), Error);
  EXPECT_THROW(make_path(0), Error);
  EXPECT_THROW(make_cycle(2), Error);
  EXPECT_THROW(make_power_law(10, 2.0, 1.5, 1), Error);  // gamma <= 2
  EXPECT_THROW(make_random_geometric(0, 0.1, 1), Error);
}

}  // namespace
}  // namespace ffp
