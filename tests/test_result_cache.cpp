#include "api/result_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "graph/generators.hpp"

namespace ffp::api {
namespace {

std::shared_ptr<const SolverResult> result_tagged(double value) {
  static const Graph g = make_path(2);
  SolverResult r{Partition(g, 1), value, 0.0, {}};
  return std::make_shared<const SolverResult>(std::move(r));
}

TEST(ResultCache, HitMissAndCounters) {
  ResultCache cache(2);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.get("a"), nullptr);
  cache.put("a", result_tagged(1));
  const auto hit = cache.get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->best_value, 1);
  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.entries, 1);
  EXPECT_EQ(counters.capacity, 2);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.put("a", result_tagged(1));
  cache.put("b", result_tagged(2));
  EXPECT_NE(cache.get("a"), nullptr);  // refresh a: b is now LRU
  cache.put("c", result_tagged(3));    // evicts b
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.counters().entries, 2);
}

TEST(ResultCache, PutRefreshesExistingKeys) {
  ResultCache cache(2);
  cache.put("a", result_tagged(1));
  cache.put("a", result_tagged(9));  // replace, not duplicate
  EXPECT_EQ(cache.counters().entries, 1);
  EXPECT_EQ(cache.get("a")->best_value, 9);
  // Refreshing "a" by put makes it MRU: inserting two more evicts the
  // other entry first.
  cache.put("b", result_tagged(2));
  cache.put("a", result_tagged(10));
  cache.put("c", result_tagged(3));
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_EQ(cache.get("a")->best_value, 10);
}

TEST(ResultCache, EvictionNeverInvalidatesHeldResults) {
  ResultCache cache(1);
  cache.put("a", result_tagged(7));
  const auto held = cache.get("a");
  cache.put("b", result_tagged(8));  // evicts a
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_EQ(held->best_value, 7);  // still alive through the shared_ptr
}

TEST(ResultCache, DisabledAndDegenerateInputs) {
  ResultCache off(0);
  EXPECT_FALSE(off.enabled());
  off.put("a", result_tagged(1));
  EXPECT_EQ(off.get("a"), nullptr);
  EXPECT_EQ(off.counters().hits, 0);
  EXPECT_EQ(off.counters().misses, 0);  // disabled lookups do not count

  ResultCache cache(2);
  cache.put("", result_tagged(1));   // empty key: uncacheable marker
  cache.put("k", nullptr);           // null result: dropped
  EXPECT_EQ(cache.counters().entries, 0);
  EXPECT_EQ(cache.get(""), nullptr);
  EXPECT_EQ(cache.counters().misses, 0);  // empty key never counts
}

}  // namespace
}  // namespace ffp::api
