#include "multilevel/matching.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ffp {
namespace {

void expect_valid_matching(const Graph& g, std::span<const VertexId> match) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId m = match[static_cast<std::size_t>(v)];
    ASSERT_GE(m, 0);
    ASSERT_LT(m, g.num_vertices());
    EXPECT_EQ(match[static_cast<std::size_t>(m)], v) << "asymmetric at " << v;
    if (m != v) {
      EXPECT_TRUE(g.has_edge(v, m)) << "matched non-edge " << v << "," << m;
    }
  }
}

TEST(Matching, HeavyEdgeIsValidOnAllFamilies) {
  Rng rng(3);
  const std::vector<Graph> graphs = {make_grid2d(7, 7), make_torus(6, 6),
                                     make_complete(9), make_star(12)};
  for (const auto& g : graphs) {
    const auto match = heavy_edge_matching(g, rng);
    expect_valid_matching(g, match);
  }
}

TEST(Matching, RandomIsValid) {
  Rng rng(5);
  const auto g = make_grid2d(8, 6);
  const auto match = random_matching(g, rng);
  expect_valid_matching(g, match);
}

TEST(Matching, DisjointEdgesFullyMatched) {
  // On a graph that IS a perfect matching, HEM must match every vertex.
  const std::vector<WeightedEdge> edges = {
      {0, 1, 2.0}, {2, 3, 5.0}, {4, 5, 1.0}};
  const auto g = Graph::from_edges(6, edges);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    const auto match = heavy_edge_matching(g, rng);
    expect_valid_matching(g, match);
    for (VertexId v = 0; v < 6; ++v) {
      EXPECT_NE(match[static_cast<std::size_t>(v)], v);
    }
  }
}

TEST(Matching, HeavyEdgeBeatsRandomOnMatchedWeight) {
  // Statistically, HEM contracts more edge weight than random matching.
  const auto g = with_random_weights(make_grid2d(10, 10), 0.1, 10.0, 99);
  double hem_total = 0.0, rnd_total = 0.0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng ra(seed), rb(seed);
    const auto hem = heavy_edge_matching(g, ra);
    const auto rnd = random_matching(g, rb);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (hem[static_cast<std::size_t>(v)] > v) {
        hem_total += g.edge_weight(v, hem[static_cast<std::size_t>(v)]);
      }
      if (rnd[static_cast<std::size_t>(v)] > v) {
        rnd_total += g.edge_weight(v, rnd[static_cast<std::size_t>(v)]);
      }
    }
  }
  EXPECT_GT(hem_total, rnd_total * 1.1);
}

TEST(Matching, MatchesMostVerticesOnRegularGraph) {
  Rng rng(7);
  const auto g = make_torus(8, 8);
  const auto match = heavy_edge_matching(g, rng);
  int matched = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (match[static_cast<std::size_t>(v)] != v) ++matched;
  }
  EXPECT_GE(matched, g.num_vertices() / 2);  // maximal matchings do better
}

TEST(Matching, IsolatedVerticesStayUnmatched) {
  const auto g = Graph::from_edges(3, {});
  Rng rng(9);
  const auto match = heavy_edge_matching(g, rng);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(match[static_cast<std::size_t>(v)], v);
  }
}

TEST(Matching, DeterministicForSeed) {
  const auto g = make_grid2d(6, 6);
  Rng a(11), b(11);
  EXPECT_EQ(heavy_edge_matching(g, a), heavy_edge_matching(g, b));
}

}  // namespace
}  // namespace ffp
