#include "multilevel/coarsen.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ffp {
namespace {

TEST(Coarsen, ContractTotalVertexWeightConserved) {
  const auto g = with_random_weights(make_grid2d(6, 6), 1.0, 3.0, 3);
  Rng rng(4);
  const auto match = heavy_edge_matching(g, rng);
  const auto level = contract_matching(g, match);
  EXPECT_NEAR(level.coarse.total_vertex_weight(), g.total_vertex_weight(),
              1e-9);
}

TEST(Coarsen, ContractEdgeWeightConservedModuloInternal) {
  // Total edge weight = coarse edge weight + weight of contracted edges.
  const auto g = with_random_weights(make_torus(5, 5), 1.0, 2.0, 5);
  Rng rng(6);
  const auto match = heavy_edge_matching(g, rng);
  double contracted = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId m = match[static_cast<std::size_t>(v)];
    if (m > v) contracted += g.edge_weight(v, m);
  }
  const auto level = contract_matching(g, match);
  EXPECT_NEAR(level.coarse.total_edge_weight() + contracted,
              g.total_edge_weight(), 1e-9);
}

TEST(Coarsen, MapCoversAllCoarseVertices) {
  const auto g = make_grid2d(7, 5);
  Rng rng(7);
  const auto level = contract_matching(g, heavy_edge_matching(g, rng));
  std::vector<int> hits(static_cast<std::size_t>(level.coarse.num_vertices()), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId c = level.fine_to_coarse[static_cast<std::size_t>(v)];
    ASSERT_GE(c, 0);
    ASSERT_LT(c, level.coarse.num_vertices());
    ++hits[static_cast<std::size_t>(c)];
  }
  for (int h : hits) {
    EXPECT_GE(h, 1);
    EXPECT_LE(h, 2);  // matchings merge at most pairs
  }
}

TEST(Coarsen, RejectsAsymmetricMatching) {
  const auto g = make_path(4);
  const std::vector<VertexId> bad = {1, 0, 3, 2};
  EXPECT_NO_THROW(contract_matching(g, bad));
  const std::vector<VertexId> asym = {1, 2, 0, 3};
  EXPECT_THROW(contract_matching(g, asym), Error);
}

TEST(Coarsen, ChainShrinksToThreshold) {
  const auto g = make_grid2d(16, 16);
  CoarsenOptions opt;
  opt.min_vertices = 30;
  const auto chain = coarsen_chain(g, opt);
  ASSERT_FALSE(chain.empty());
  EXPECT_LE(chain.back().coarse.num_vertices(), 60);  // ~half per level
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LT(chain[i].coarse.num_vertices(),
              chain[i - 1].coarse.num_vertices());
  }
}

TEST(Coarsen, ChainEmptyForSmallGraph) {
  const auto g = make_path(10);
  CoarsenOptions opt;
  opt.min_vertices = 64;
  EXPECT_TRUE(coarsen_chain(g, opt).empty());
}

TEST(Coarsen, StallsGracefullyOnStar) {
  // A star can only contract one edge per level; the min_shrink guard must
  // terminate the chain rather than looping.
  const auto g = make_star(40);
  CoarsenOptions opt;
  opt.min_vertices = 4;
  const auto chain = coarsen_chain(g, opt);
  EXPECT_LT(chain.size(), 40u);
}

TEST(Coarsen, ProlongRoundTripsConstants) {
  const auto g = make_grid2d(10, 10);
  CoarsenOptions opt;
  opt.min_vertices = 12;
  const auto chain = coarsen_chain(g, opt);
  ASSERT_FALSE(chain.empty());
  const std::vector<double> coarse_vals(
      static_cast<std::size_t>(chain.back().coarse.num_vertices()), 3.25);
  const auto fine = prolong_to_finest(chain, chain.size(), coarse_vals);
  ASSERT_EQ(fine.size(), static_cast<std::size_t>(g.num_vertices()));
  for (double v : fine) EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(Coarsen, ProlongMapsDistinctValues) {
  const auto g = make_path(8);
  const std::vector<VertexId> match = {1, 0, 3, 2, 5, 4, 7, 6};
  const auto level = contract_matching(g, match);
  ASSERT_EQ(level.coarse.num_vertices(), 4);
  std::vector<CoarseLevel> chain;
  chain.push_back(level);
  const std::vector<double> vals = {10, 20, 30, 40};
  const auto fine = prolong_to_finest(chain, 1, vals);
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_DOUBLE_EQ(
        fine[static_cast<std::size_t>(v)],
        vals[static_cast<std::size_t>(
            level.fine_to_coarse[static_cast<std::size_t>(v)])]);
  }
}

TEST(Coarsen, DeterministicForSeed) {
  const auto g = make_grid2d(12, 12);
  CoarsenOptions opt;
  opt.seed = 42;
  const auto a = coarsen_chain(g, opt);
  const auto b = coarsen_chain(g, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].coarse.num_vertices(), b[i].coarse.num_vertices());
    EXPECT_EQ(a[i].fine_to_coarse, b[i].fine_to_coarse);
  }
}

}  // namespace
}  // namespace ffp
