#include "service/service.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "service/json.hpp"
#include "util/strings.hpp"

namespace ffp {
namespace {

/// Host + one-session harness: captures every emitted line and offers JSON
/// access. `lines` precedes `session` so streamed events always land in a
/// live vector; `host` precedes `session` because sessions borrow it.
struct Harness {
  explicit Harness(ServiceOptions options = {})
      : host(std::move(options)),
        session(host,
                [this](const std::string& line) { lines.push_back(line); }) {}

  bool feed(const std::string& line) { return session.handle_line(line); }

  JsonValue last() const {
    EXPECT_FALSE(lines.empty());
    return JsonValue::parse(lines.back());
  }
  std::string last_event() const { return last().find("event")->as_string(); }
  std::string last_message() const {
    return last().find("message")->as_string();
  }

  std::vector<std::string> lines;
  ServiceHost host;
  ServiceSession session;
};

const char* kInlineSubmit =
    R"({"op":"submit","id":"job","graph":{"n":6,"edges":[[0,1],[1,2],[2,3,0.1],[3,4],[4,5]]},"k":2,"steps":400,"seed":9})";

TEST(ServiceProtocol, RejectsMalformedRequests) {
  Harness h;
  const std::vector<std::string> bad = {
      "not json at all",
      "[1,2,3]",                                   // not an object
      R"({"id":"x"})",                             // missing op
      R"({"op":"submit","id":"x"})",               // no graph at all
      R"({"op":"submit","id":"x","graph_file":"a","graph":{"edges":[[0,1]]}})",
      R"({"op":"submit","id":"x","graph":{"edges":[[0,1]]},"bogus":1})",
      R"({"op":"submit","graph":{"edges":[[0,1]]}})",          // missing id
      R"({"op":"submit","id":"","graph":{"edges":[[0,1]]}})",  // empty id
      R"({"op":"submit","id":"x","graph":{"edges":[[0,0]]}})",  // self loop
      R"({"op":"submit","id":"x","graph":{"edges":[[0,-1]]}})",
      R"({"op":"submit","id":"x","graph":{"edges":[[0]]}})",
      R"({"op":"submit","id":"x","graph":{"edges":[[0,1,"w"]]}})",
      R"({"op":"submit","id":"x","graph":{"edges":[[0,1]],"extra":1}})",
      R"({"op":"submit","id":"x","graph":{"edges":[[0,1]]},"k":0})",
      R"({"op":"submit","id":"x","graph":{"edges":[[0,1]]},"steps":-1})",
      R"({"op":"submit","id":"x","graph":{"edges":[[0,1]]},"objective":"x"})",
      R"({"op":"submit","id":"x","graph":{"edges":[[0,1]]},"method":""})",
      R"({"op":"submit","id":"x","graph":{"n":2,"edges":[[0,5]]}})",
      R"({"op":"status"})",
      R"({"op":"status","id":"x","extra":1})",
      R"({"op":"shutdown","extra":1})",
      R"({"op":"bogus"})",
  };
  for (const auto& line : bad) {
    EXPECT_TRUE(h.feed(line)) << line;
    EXPECT_EQ(h.last_event(), "error") << line << " -> " << h.lines.back();
  }
  // None of it reached the scheduler.
  EXPECT_EQ(h.host.engine().scheduler().jobs_completed(), 0);
}

TEST(ServiceProtocol, RejectsOversizedIdsAndDocuments) {
  ServiceOptions options;
  options.limits.max_id_bytes = 8;
  options.limits.json.max_bytes = 256;
  Harness h(std::move(options));
  h.feed(R"({"op":"status","id":"way_too_long_for_the_limit"})");
  EXPECT_EQ(h.last_event(), "error");
  std::string big = R"({"op":"status","id":")";
  big.append(300, 'a');
  big += "\"}";
  h.feed(big);
  EXPECT_EQ(h.last_event(), "error");
}

TEST(ServiceProtocol, EnforcesGraphLimitsOnInlineGraphs) {
  ServiceOptions options;
  options.limits.graph.max_vertices = 4;
  options.limits.graph.max_edges = 2;
  Harness h(std::move(options));
  h.feed(R"({"op":"submit","id":"a","graph":{"edges":[[0,9]]}})");
  EXPECT_EQ(h.last_event(), "error");
  h.feed(R"({"op":"submit","id":"a","graph":{"edges":[[0,1],[1,2],[2,3]]}})");
  EXPECT_EQ(h.last_event(), "error");

  // Even with DEFAULT limits, a tiny request declaring a huge `n` must be
  // rejected before Graph::from_edges can allocate O(n) for it.
  Harness defaults;
  defaults.feed(
      R"({"op":"submit","id":"a","graph":{"n":2147483000,"edges":[[0,1]]},"k":2})");
  EXPECT_EQ(defaults.last_event(), "error");
}

TEST(ServiceSession, SubmitStatusResultRoundTrip) {
  Harness h;
  EXPECT_TRUE(h.feed(kInlineSubmit));
  EXPECT_EQ(h.last_event(), "ack");

  EXPECT_TRUE(h.feed(R"({"op":"result","id":"job"})"));
  const JsonValue result = h.last();
  EXPECT_EQ(result.find("event")->as_string(), "result");
  EXPECT_EQ(result.find("state")->as_string(), "done");
  const auto& parts = result.find("partition")->as_array();
  ASSERT_EQ(parts.size(), 6u);
  // The 0.1-weight bridge is the obvious min cut: {0,1,2} | {3,4,5}.
  EXPECT_EQ(parts[0].as_int(), parts[1].as_int());
  EXPECT_EQ(parts[1].as_int(), parts[2].as_int());
  EXPECT_EQ(parts[3].as_int(), parts[4].as_int());
  EXPECT_EQ(parts[4].as_int(), parts[5].as_int());
  EXPECT_NE(parts[0].as_int(), parts[3].as_int());

  EXPECT_TRUE(h.feed(R"({"op":"status","id":"job"})"));
  EXPECT_EQ(h.last().find("state")->as_string(), "done");
}

TEST(ServiceSession, DuplicateIdsAndUnknownIdsError) {
  Harness h;
  h.feed(kInlineSubmit);
  EXPECT_EQ(h.last_event(), "ack");
  h.feed(kInlineSubmit);
  EXPECT_EQ(h.last_event(), "error");
  h.feed(R"({"op":"status","id":"nobody"})");
  EXPECT_EQ(h.last_event(), "error");
  h.feed(R"({"op":"cancel","id":"nobody"})");
  EXPECT_EQ(h.last_event(), "error");
}

TEST(ServiceSession, FilePolicyAndFileSubmissions) {
  const std::string path = ::testing::TempDir() + "/ffp_service_test.graph";
  write_chaco_file(make_grid2d(8, 8), path);

  ServiceOptions closed;
  closed.allow_files = false;
  Harness no_files(std::move(closed));
  const std::string submit =
      R"({"op":"submit","id":"f","graph_file":)" +
      [&] {
        std::string q;
        json_append_quoted(q, path);
        return q;
      }() +
      R"(,"k":4,"steps":300})";
  no_files.feed(submit);
  EXPECT_EQ(no_files.last_event(), "error");

  Harness open;
  open.feed(submit);
  EXPECT_EQ(open.last_event(), "ack");
  open.feed(R"({"op":"result","id":"f"})");
  EXPECT_EQ(open.last_event(), "result");
  EXPECT_EQ(open.last().find("partition")->as_array().size(), 64u);

  Harness missing;
  missing.feed(
      R"({"op":"submit","id":"f","graph_file":"/nonexistent.graph","k":2})");
  EXPECT_EQ(missing.last_event(), "error");
  std::remove(path.c_str());
}

TEST(ServiceSession, CancelMidRunReturnsAnytimeResult) {
  Harness h;
  h.feed(
      R"({"op":"submit","id":"long","graph":{"n":9,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8]]},"k":3,"steps":80000000,"seed":3})");
  EXPECT_EQ(h.last_event(), "ack");
  // Poll until running, then cancel; result must come back promptly with
  // the best-so-far partition and state "cancelled".
  h.feed(R"({"op":"cancel","id":"long"})");
  EXPECT_EQ(h.last_event(), "ack");
  h.feed(R"({"op":"result","id":"long"})");
  const JsonValue result = h.last();
  const std::string event = result.find("event")->as_string();
  if (event == "result") {
    EXPECT_EQ(result.find("state")->as_string(), "cancelled");
    EXPECT_EQ(result.find("partition")->as_array().size(), 9u);
  } else {
    // Cancelled before the runner picked it up: no partition to return.
    EXPECT_EQ(event, "error");
  }
}

TEST(ServiceSession, ShutdownEmitsByeAndStopsTheLoop) {
  Harness h;
  EXPECT_FALSE(h.feed(R"({"op":"shutdown"})"));
  EXPECT_EQ(h.last_event(), "bye");
}

TEST(ServiceSession, BlankLinesAreKeepAlives) {
  Harness h;
  EXPECT_TRUE(h.feed(""));
  EXPECT_TRUE(h.feed("   "));
  EXPECT_TRUE(h.lines.empty());
}

TEST(ServiceSession, StreamsProgressWhenEnabled) {
  ServiceOptions options;
  options.stream_progress = true;
  Harness h(std::move(options));
  h.feed(kInlineSubmit);
  h.feed(R"({"op":"result","id":"job"})");
  h.session.drain();
  int progress = 0;
  for (const auto& line : h.lines) {
    if (JsonValue::parse(line).find("event")->as_string() == "progress") {
      ++progress;
    }
  }
  EXPECT_GE(progress, 1);
}

// Acceptance criterion, end to end through the protocol: the same seeded
// job set submitted serially (await each result before the next submit)
// and concurrently (submit all, then collect) produces byte-identical
// partitions at worker budgets 1, 4 and 8.
TEST(ServiceSession, SerialVsConcurrentSubmissionByteIdentical) {
  const int kJobs = 4;
  const auto submit_line = [](int i) {
    return std::string(R"({"op":"submit","id":"j)") + std::to_string(i) +
           R"(","graph_file":")" + ::testing::TempDir() +
           R"(/ffp_det_test.graph","k":5,"steps":2500,"seed":)" +
           std::to_string(40 + i) + R"(,"threads":2})";
  };
  const auto result_line = [](int i) {
    return std::string(R"({"op":"result","id":"j)") + std::to_string(i) +
           R"("})";
  };
  const std::string path = ::testing::TempDir() + "/ffp_det_test.graph";
  write_chaco_file(make_random_geometric(150, 0.18, 5), path);

  const auto partition_of = [](const std::string& line) {
    const JsonValue v = JsonValue::parse(line);
    EXPECT_EQ(v.find("event")->as_string(), "result") << line;
    std::string out;
    for (const auto& p : v.find("partition")->as_array()) {
      out += std::to_string(p.as_int());
      out += '\n';
    }
    return out;
  };

  // Serial reference: one runner, one worker, one job in flight at a time.
  std::vector<std::string> reference;
  {
    ThreadBudget budget(1);
    ServiceOptions options;
    options.runners = 1;
    options.budget = &budget;
    Harness h(std::move(options));
    for (int i = 0; i < kJobs; ++i) {
      h.feed(submit_line(i));
      ASSERT_EQ(h.last_event(), "ack") << h.lines.back();
      h.feed(result_line(i));
      reference.push_back(partition_of(h.lines.back()));
    }
  }

  for (const unsigned budget_size : {1u, 4u, 8u}) {
    ThreadBudget budget(budget_size);
    ServiceOptions options;
    options.runners = 3;
    options.budget = &budget;
    Harness h(std::move(options));
    for (int i = 0; i < kJobs; ++i) {
      h.feed(submit_line(i));
      ASSERT_EQ(h.last_event(), "ack") << h.lines.back();
    }
    for (int i = 0; i < kJobs; ++i) {
      h.feed(result_line(i));
      EXPECT_EQ(partition_of(h.lines.back()), reference[static_cast<std::size_t>(i)])
          << "job " << i << " diverged at budget " << budget_size;
    }
    EXPECT_LE(budget.peak_in_use(), budget.total());
  }
  std::remove(path.c_str());
}

/// Serializes a graph into the protocol's inline form (each edge once).
std::string inline_graph_json(const Graph& g) {
  std::string out = "{\"n\":" + std::to_string(g.num_vertices()) +
                    ",\"edges\":[";
  bool first = true;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto neighbors = g.neighbors(v);
    const auto weights = g.neighbor_weights(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] < v) continue;  // other direction already emitted
      if (!first) out += ',';
      first = false;
      out += "[" + std::to_string(v) + "," + std::to_string(neighbors[i]) +
             "," + format("%.17g", weights[i]) + "]";
    }
  }
  out += "]}";
  return out;
}

// The concurrent-connections contract: N sessions hammering ONE host from
// their own threads produce byte-identical partitions to a serial replay
// of the same jobs on a fresh host — sessions share the engine, never
// each other's state.
TEST(ServiceHost, ConcurrentSessionsMatchSerialReplay) {
  const int kClients = 4;
  const int kJobsPerClient = 2;
  const std::string graph =
      inline_graph_json(make_random_geometric(80, 0.25, 9));
  const auto submit_line = [&](int client, int job) {
    return std::string(R"({"op":"submit","id":"c)") + std::to_string(client) +
           "j" + std::to_string(job) + R"(","graph":)" + graph +
           R"(,"k":4,"steps":1200,"seed":)" +
           std::to_string(100 + client * 10 + job) + "}";
  };
  const auto result_line = [](int client, int job) {
    return std::string(R"({"op":"result","id":"c)") + std::to_string(client) +
           "j" + std::to_string(job) + R"("})";
  };
  const auto partition_of = [](const std::string& line) {
    const JsonValue v = JsonValue::parse(line);
    EXPECT_EQ(v.find("event")->as_string(), "result") << line;
    std::string out;
    for (const auto& p : v.find("partition")->as_array()) {
      out += std::to_string(p.as_int());
      out += '\n';
    }
    return out;
  };

  // Serial replay: every job through one session, one at a time.
  std::map<std::string, std::string> reference;
  {
    ServiceOptions options;
    options.runners = 1;
    options.cache_capacity = 0;
    ThreadBudget budget(1);
    options.budget = &budget;
    Harness h(std::move(options));
    for (int c = 0; c < kClients; ++c) {
      for (int j = 0; j < kJobsPerClient; ++j) {
        h.feed(submit_line(c, j));
        ASSERT_EQ(h.last_event(), "ack") << h.lines.back();
        h.feed(result_line(c, j));
        reference["c" + std::to_string(c) + "j" + std::to_string(j)] =
            partition_of(h.lines.back());
      }
    }
  }

  ServiceOptions options;
  options.runners = 3;
  ThreadBudget budget(4);
  options.budget = &budget;
  ServiceHost host(std::move(options));
  std::vector<std::map<std::string, std::string>> got(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<std::string> lines;
        ServiceSession session(
            host, [&lines](const std::string& line) { lines.push_back(line); });
        for (int j = 0; j < kJobsPerClient; ++j) {
          session.handle_line(submit_line(c, j));
          ASSERT_EQ(JsonValue::parse(lines.back()).find("event")->as_string(),
                    "ack")
              << lines.back();
        }
        for (int j = 0; j < kJobsPerClient; ++j) {
          lines.clear();
          session.handle_line(result_line(c, j));
          got[static_cast<std::size_t>(c)]
             ["c" + std::to_string(c) + "j" + std::to_string(j)] =
                 partition_of(lines.back());
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    for (const auto& [id, partition] : got[static_cast<std::size_t>(c)]) {
      EXPECT_EQ(partition, reference.at(id)) << id;
    }
  }
  EXPECT_LE(budget.peak_in_use(), budget.total());
}

// The result cache through the protocol: a repeat submission (same inline
// graph, same deterministic spec, fresh id) is answered from the cache,
// and status replies expose the hit/miss counters.
TEST(ServiceHost, RepeatSubmissionsHitTheResultCache) {
  Harness h;  // default options: cache on
  h.feed(kInlineSubmit);
  ASSERT_EQ(h.last_event(), "ack");
  h.feed(R"({"op":"result","id":"job"})");
  const std::string first = h.lines.back();

  // Same graph + spec under a new id: served from the cache.
  std::string again(kInlineSubmit);
  const auto pos = again.find("\"job\"");
  again.replace(pos, 5, "\"job2\"");
  h.feed(again);
  ASSERT_EQ(h.last_event(), "ack");
  h.feed(R"({"op":"result","id":"job2"})");
  const JsonValue repeat = JsonValue::parse(h.lines.back());
  EXPECT_EQ(repeat.find("event")->as_string(), "result");

  const JsonValue first_v = JsonValue::parse(first);
  EXPECT_EQ(repeat.find("value")->as_number(),
            first_v.find("value")->as_number());

  h.feed(R"({"op":"status","id":"job2"})");
  const JsonValue status = h.last();
  ASSERT_NE(status.find("cache_hits"), nullptr);
  EXPECT_GE(status.find("cache_hits")->as_int(), 1);
  EXPECT_GE(status.find("cache_misses")->as_int(), 1);
  // Status doubles as a cache-health probe: occupancy, bound, churn.
  ASSERT_NE(status.find("cache_entries"), nullptr);
  EXPECT_GE(status.find("cache_entries")->as_int(), 1);
  ASSERT_NE(status.find("cache_capacity"), nullptr);
  EXPECT_GT(status.find("cache_capacity")->as_int(), 0);
  ASSERT_NE(status.find("cache_evictions"), nullptr);
  EXPECT_GE(status.find("cache_evictions")->as_int(), 0);
  // ... and an elite-archive probe: the finished job fed its population,
  // and archive_best reports this job's (digest, k, objective) floor.
  ASSERT_NE(status.find("archive_elites"), nullptr);
  EXPECT_GE(status.find("archive_elites")->as_int(), 1);
  ASSERT_NE(status.find("archive_populations"), nullptr);
  EXPECT_GE(status.find("archive_populations")->as_int(), 1);
  ASSERT_NE(status.find("archive_admitted"), nullptr);
  ASSERT_NE(status.find("archive_best"), nullptr);
  EXPECT_EQ(status.find("archive_best")->as_number(),
            JsonValue::parse(first).find("value")->as_number());
  EXPECT_EQ(h.host.engine().cache_counters().hits, 1);
}

// Every error event names its place in the retryable-vs-fatal taxonomy —
// clients dispatch on `code`/`retryable`, not on message prose.
TEST(ServiceProtocol, ErrorEventsCarryTheCodeTaxonomy) {
  Harness h;
  h.feed(R"({"op":"status","id":"nobody"})");
  JsonValue err = h.last();
  ASSERT_EQ(err.find("event")->as_string(), "error");
  ASSERT_NE(err.find("code"), nullptr) << h.lines.back();
  EXPECT_EQ(err.find("code")->as_string(), "unknown_job");
  ASSERT_NE(err.find("retryable"), nullptr);
  EXPECT_FALSE(err.find("retryable")->as_bool());

  h.feed("this is not json");
  err = h.last();
  ASSERT_EQ(err.find("event")->as_string(), "error");
  EXPECT_EQ(err.find("code")->as_string(), "bad_request");
  EXPECT_FALSE(err.find("retryable")->as_bool());
}

// The remote-shutdown gate: a session whose policy forbids shutdown
// answers with a fatal `forbidden` error and KEEPS SERVING — the
// connection is not torn down, and real work still goes through.
TEST(ServiceSession, ShutdownGatedBySessionPolicy) {
  ServiceHost host{ServiceOptions{}};
  std::vector<std::string> lines;
  SessionPolicy policy;
  policy.allow_shutdown = false;
  ServiceSession session(
      host, [&lines](const std::string& line) { lines.push_back(line); },
      policy);

  EXPECT_TRUE(session.handle_line(R"({"op":"shutdown"})"));  // still serving
  const JsonValue err = JsonValue::parse(lines.back());
  ASSERT_EQ(err.find("event")->as_string(), "error");
  EXPECT_EQ(err.find("code")->as_string(), "forbidden");
  EXPECT_FALSE(err.find("retryable")->as_bool());

  session.handle_line(kInlineSubmit);
  EXPECT_EQ(JsonValue::parse(lines.back()).find("event")->as_string(), "ack");
}

TEST(ServiceProtocol, QueueTtlFieldValidatedAndAccepted) {
  Harness h;
  h.feed(
      R"({"op":"submit","id":"t0","graph":{"n":4,"edges":[[0,1],[1,2],[2,3]]},"k":2,"steps":300,"queue_ttl_ms":-5})");
  EXPECT_EQ(h.last_event(), "error");
  h.feed(
      R"({"op":"submit","id":"t1","graph":{"n":4,"edges":[[0,1],[1,2],[2,3]]},"k":2,"steps":300,"queue_ttl_ms":"soon"})");
  EXPECT_EQ(h.last_event(), "error");
  h.feed(
      R"({"op":"submit","id":"t2","graph":{"n":4,"edges":[[0,1],[1,2],[2,3]]},"k":2,"steps":300,"queue_ttl_ms":60000})");
  EXPECT_EQ(h.last_event(), "ack");
  h.feed(R"({"op":"result","id":"t2"})");
  EXPECT_EQ(h.last_event(), "result");
}

TEST(ServiceProtocol, RestartsFieldValidatedAndAccepted) {
  Harness h;
  h.feed(
      R"({"op":"submit","id":"r0","graph":{"n":4,"edges":[[0,1],[1,2],[2,3]]},"k":2,"steps":300,"restarts":0})");
  EXPECT_EQ(h.last_event(), "error");
  h.feed(
      R"({"op":"submit","id":"r","graph":{"n":4,"edges":[[0,1],[1,2],[2,3]]},"k":2,"steps":300,"restarts":3})");
  EXPECT_EQ(h.last_event(), "ack");
  h.feed(R"({"op":"result","id":"r"})");
  EXPECT_EQ(h.last_event(), "result");
}

// Status pins the serving counters (event loop + migration observability):
// the KEY SET is part of the wire contract — dashboards and the CI smoke
// grep these names, so renaming one is a protocol change, not a refactor.
TEST(ServiceProtocol, StatusCarriesServeCounters) {
  Harness h;
  h.feed(kInlineSubmit);
  h.feed(R"({"op":"status","id":"job"})");
  const JsonValue status = h.last();
  for (const char* key :
       {"conns_open", "conns_total", "loop_wakeups", "sheds",
        "migrations_sent", "migrations_received"}) {
    ASSERT_NE(status.find(key), nullptr) << key;
    EXPECT_GE(status.find(key)->as_int(), 0) << key;
  }
}

// The migrate_elite op end to end in one process: a foreign elite is
// admitted into the archive (status-visible) and then seeds the digest's
// population floor reported by archive_best.
TEST(ServiceSession, MigrateEliteAdmitsIntoTheArchive) {
  Harness h;
  // Solve once so the population (digest, k=2, cut) exists and we know
  // the digest the submit routed to... actually the op creates the
  // population on demand; push into a fresh one.
  h.feed(
      R"({"op":"migrate_elite","digest":"deadbeef","k":2,"objective":"cut",)"
      R"("value":4.5,"assignment":[0,0,1,1,0,1]})");
  const JsonValue admit = h.last();
  ASSERT_EQ(admit.find("event")->as_string(), "migrate") << h.lines.back();
  EXPECT_TRUE(admit.find("admitted")->as_bool());

  // The same elite again: a duplicate is rejected by the archive's
  // near-dup rule, answered (not errored) so gossip settles.
  h.feed(
      R"({"op":"migrate_elite","digest":"deadbeef","k":2,"objective":"cut",)"
      R"("value":4.5,"assignment":[0,0,1,1,0,1]})");
  EXPECT_EQ(h.last().find("event")->as_string(), "migrate");
  EXPECT_FALSE(h.last().find("admitted")->as_bool());
  EXPECT_EQ(h.host.serve_stats().snapshot().migrations_received, 2);

  // Status shows the archive grew (a second population appears next to
  // the job's own) even though no job carried this digest — migration is
  // archive traffic, not job traffic.
  h.feed(kInlineSubmit);
  h.feed(R"({"op":"result","id":"job"})");
  h.feed(R"({"op":"status","id":"job"})");
  EXPECT_GE(h.last().find("archive_populations")->as_int(), 2);
}

TEST(ServiceSession, MigrateEliteForbiddenWhenArchiveDisabled) {
  ServiceOptions options;
  options.evolve_capacity = 0;
  Harness h(std::move(options));
  h.feed(
      R"({"op":"migrate_elite","digest":"1f","k":2,"objective":"cut",)"
      R"("value":1.0,"assignment":[0,1]})");
  const JsonValue err = h.last();
  ASSERT_EQ(err.find("event")->as_string(), "error");
  EXPECT_EQ(err.find("code")->as_string(), "forbidden");
}

TEST(ServiceProtocol, MigrateEliteRejectsMalformedPushes) {
  Harness h;
  const std::vector<std::string> bad = {
      // missing fields
      R"({"op":"migrate_elite"})",
      R"({"op":"migrate_elite","digest":"1f","k":2,"objective":"cut","value":1.0})",
      R"({"op":"migrate_elite","digest":"1f","k":2,"value":1.0,"assignment":[0,1]})",
      // digest not hex / too long
      R"({"op":"migrate_elite","digest":"xyz","k":2,"objective":"cut","value":1.0,"assignment":[0,1]})",
      R"({"op":"migrate_elite","digest":"00112233445566778","k":2,"objective":"cut","value":1.0,"assignment":[0,1]})",
      // parts out of [0, k)
      R"({"op":"migrate_elite","digest":"1f","k":2,"objective":"cut","value":1.0,"assignment":[0,2]})",
      R"({"op":"migrate_elite","digest":"1f","k":2,"objective":"cut","value":1.0,"assignment":[0,-1]})",
      // value not finite / not a number
      R"({"op":"migrate_elite","digest":"1f","k":2,"objective":"cut","value":"low","assignment":[0,1]})",
      // unknown key
      R"({"op":"migrate_elite","digest":"1f","k":2,"objective":"cut","value":1.0,"assignment":[0,1],"extra":1})",
      // empty assignment
      R"({"op":"migrate_elite","digest":"1f","k":2,"objective":"cut","value":1.0,"assignment":[]})",
  };
  for (const auto& line : bad) {
    EXPECT_TRUE(h.feed(line)) << line;
    EXPECT_EQ(h.last_event(), "error") << line << " -> " << h.lines.back();
  }
}

// format_migrate_elite is the only producer of the push line; it must
// round-trip through the strict parser (the receiving shard's view).
TEST(ServiceProtocol, MigrateEliteWireLineRoundTrips) {
  const evolve::PopulationKey key{0x00c0ffee12345678ull, 3,
                                  ObjectiveKind::Cut};
  const std::vector<int> parts = {0, 1, 2, 1, 0};
  const std::string line = format_migrate_elite(key, 6.25, parts);
  const Request request = parse_request(line, ProtocolLimits{});
  EXPECT_EQ(request.op, RequestOp::MigrateElite);
  EXPECT_EQ(request.digest, key.digest);
  EXPECT_EQ(request.spec.k, 3);
  EXPECT_EQ(request.spec.objective, ObjectiveKind::Cut);
  EXPECT_EQ(request.migrate_value, 6.25);
  ASSERT_NE(request.migrate_assignment, nullptr);
  EXPECT_EQ(*request.migrate_assignment, parts);
}

}  // namespace
}  // namespace ffp
