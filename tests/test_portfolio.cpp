#include "solver/portfolio.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "solver/registry.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

const Graph& grid() {
  static const Graph g = make_grid2d(9, 7);
  return g;
}

/// Step-budget request: metaheuristic runs become deterministic functions
/// of the seed, which is the portfolio determinism contract's precondition.
SolverRequest step_request(int k = 4, std::uint64_t seed = 17,
                           std::int64_t steps = 400) {
  SolverRequest request;
  request.k = k;
  request.objective = ObjectiveKind::MinMaxCut;
  request.stop = StopCondition::after_steps(steps);
  request.seed = seed;
  return request;
}

TEST(SeedStream, DeterministicAndDistinct) {
  const auto a = PortfolioRunner::seed_stream(123, 16);
  const auto b = PortfolioRunner::seed_stream(123, 16);
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::set<std::uint64_t>(a.begin(), a.end()).size(), a.size());
  // A prefix of a longer stream matches the shorter stream.
  const auto longer = PortfolioRunner::seed_stream(123, 32);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), longer.begin()));
  EXPECT_NE(PortfolioRunner::seed_stream(124, 16), a);
}

TEST(Portfolio, RejectsBadConfiguration) {
  EXPECT_THROW(PortfolioRunner(std::vector<SolverPtr>{}, {1, 1}), Error);
  EXPECT_THROW(PortfolioRunner(SolverPtr{}, {1, 1}), Error);
  EXPECT_THROW(PortfolioRunner(make_solver("percolation"), {0, 1}), Error);
}

TEST(Portfolio, SingleRestartMatchesDirectRunWithStreamSeed) {
  const auto solver = make_solver("fusion_fission");
  SolverRequest request = step_request();
  const auto team = PortfolioRunner(solver, {1, 2}).run(grid(), request);

  SolverRequest direct = request;
  direct.seed = PortfolioRunner::seed_stream(request.seed, 1)[0];
  const auto solo = solver->run(grid(), direct);
  EXPECT_TRUE(std::equal(team.best.assignment().begin(),
                         team.best.assignment().end(),
                         solo.best.assignment().begin()));
  EXPECT_DOUBLE_EQ(team.best_value, solo.best_value);
}

TEST(Portfolio, BestOfRestartsIsMinOverIndividualRuns) {
  const auto solver = make_solver("annealing");
  const int restarts = 5;
  SolverRequest request = step_request(4, 7, 800);
  const auto team =
      PortfolioRunner(solver, {restarts, 2}).run(grid(), request);

  double expected = std::numeric_limits<double>::infinity();
  for (const auto seed : PortfolioRunner::seed_stream(request.seed, restarts)) {
    SolverRequest direct = request;
    direct.seed = seed;
    expected = std::min(expected, solver->run(grid(), direct).best_value);
  }
  EXPECT_DOUBLE_EQ(team.best_value, expected);
}

TEST(Portfolio, DeterministicAcrossThreadCounts) {
  // The acceptance criterion: same seed, 1 vs 8 threads → bit-identical
  // best partition, for both a metaheuristic and a direct solver.
  for (const char* spec : {"fusion_fission", "multilevel"}) {
    const auto solver = make_solver(spec);
    SolverRequest request = step_request(4, 2006, 600);
    const auto one = PortfolioRunner(solver, {4, 1}).run(grid(), request);
    const auto eight = PortfolioRunner(solver, {4, 8}).run(grid(), request);
    EXPECT_EQ(one.best_value, eight.best_value) << spec;
    EXPECT_TRUE(std::equal(one.best.assignment().begin(),
                           one.best.assignment().end(),
                           eight.best.assignment().begin()))
        << spec;
    EXPECT_DOUBLE_EQ(one.stat("winner_restart", -1.0),
                     eight.stat("winner_restart", -2.0))
        << spec;
  }
}

TEST(Portfolio, MixedSolversRoundRobin) {
  std::vector<SolverPtr> solvers = {make_solver("multilevel"),
                                    make_solver("percolation"),
                                    make_solver("annealing")};
  SolverRequest request = step_request(4, 3, 500);
  const auto team = PortfolioRunner(solvers, {6, 3}).run(grid(), request);
  testing::expect_valid_partition(team.best, 4);
  EXPECT_DOUBLE_EQ(team.stat("restarts"), 6.0);

  // Winner value can never be worse than any single member's run.
  const auto seeds = PortfolioRunner::seed_stream(request.seed, 6);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SolverRequest direct = request;
    direct.seed = seeds[i];
    const auto solo = solvers[i % solvers.size()]->run(grid(), direct);
    EXPECT_LE(team.best_value, solo.best_value);
  }
}

TEST(Portfolio, StatsReportConfiguration) {
  const auto team = PortfolioRunner(make_solver("percolation"), {3, 2})
                        .run(grid(), step_request());
  EXPECT_DOUBLE_EQ(team.stat("restarts"), 3.0);
  EXPECT_DOUBLE_EQ(team.stat("threads"), 2.0);
  EXPECT_GE(team.stat("winner_restart", -1.0), 0.0);
  EXPECT_LT(team.stat("winner_restart"), 3.0);
}

TEST(Portfolio, SharedRecorderIsMonotoneBestSoFar) {
  AnytimeRecorder recorder;
  SolverRequest request = step_request(4, 11, 1500);
  request.recorder = &recorder;
  const auto team = PortfolioRunner(make_solver("fusion_fission"), {3, 3})
                        .run(grid(), request);
  ASSERT_FALSE(recorder.points().empty());
  double prev = std::numeric_limits<double>::infinity();
  for (const auto& pt : recorder.points()) {
    EXPECT_LT(pt.best_value, prev);  // strict improvements only
    prev = pt.best_value;
  }
  // The merged trajectory ends at the portfolio's winning value.
  EXPECT_DOUBLE_EQ(recorder.points().back().best_value, team.best_value);
}

}  // namespace
}  // namespace ffp
