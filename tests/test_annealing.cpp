#include "metaheuristics/annealing.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "metaheuristics/percolation.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

TEST(Annealing, ImprovesFromPercolationOnWeightedGrid) {
  const auto g = with_random_weights(make_grid2d(8, 8), 1.0, 8.0, 3);
  const auto init = percolation_partition(g, 4, {});
  AnnealingOptions opt;
  opt.objective = ObjectiveKind::MinMaxCut;
  opt.seed = 5;
  SimulatedAnnealing sa(g, 4, opt);
  const auto res = sa.run(init, StopCondition::after_steps(60000));
  const double init_value = objective(opt.objective).evaluate(init);
  EXPECT_LE(res.best_value, init_value);
  ffp::testing::expect_valid_partition(res.best, 4);
}

TEST(Annealing, BestValueMatchesBestPartition) {
  const auto g = make_torus(6, 6);
  const auto init = percolation_partition(g, 3, {});
  AnnealingOptions opt;
  opt.objective = ObjectiveKind::Cut;
  SimulatedAnnealing sa(g, 3, opt);
  const auto res = sa.run(init, StopCondition::after_steps(20000));
  EXPECT_NEAR(objective(ObjectiveKind::Cut).evaluate(res.best),
              res.best_value, 1e-6);
}

TEST(Annealing, RespectsStepBudget) {
  const auto g = make_grid2d(6, 6);
  const Partition init(g, 4);
  AnnealingOptions opt;
  SimulatedAnnealing sa(g, 4, opt);
  const auto res = sa.run(init, StopCondition::after_steps(500));
  EXPECT_LE(res.steps, 501);
}

TEST(Annealing, DeterministicForSeed) {
  const auto g = make_grid2d(7, 7);
  const auto init = percolation_partition(g, 4, {});
  AnnealingOptions opt;
  opt.seed = 77;
  SimulatedAnnealing a(g, 4, opt), b(g, 4, opt);
  const auto ra = a.run(init, StopCondition::after_steps(15000));
  const auto rb = b.run(init, StopCondition::after_steps(15000));
  EXPECT_DOUBLE_EQ(ra.best_value, rb.best_value);
  EXPECT_EQ(ra.accepted, rb.accepted);
}

TEST(Annealing, RecorderSeesMonotoneImprovement) {
  const auto g = with_random_weights(make_grid2d(8, 8), 1.0, 4.0, 9);
  const auto init = percolation_partition(g, 4, {});
  AnnealingOptions opt;
  opt.seed = 11;
  SimulatedAnnealing sa(g, 4, opt);
  AnytimeRecorder rec;
  rec.start();
  sa.run(init, StopCondition::after_steps(30000), &rec);
  ASSERT_GE(rec.points().size(), 1u);
  for (std::size_t i = 1; i < rec.points().size(); ++i) {
    EXPECT_LE(rec.points()[i].best_value, rec.points()[i - 1].best_value);
    EXPECT_GE(rec.points()[i].seconds, rec.points()[i - 1].seconds);
  }
}

TEST(Annealing, NeverEmptiesAPart) {
  const auto g = make_complete(10);
  const auto init = percolation_partition(g, 5, {});
  AnnealingOptions opt;
  opt.seed = 13;
  SimulatedAnnealing sa(g, 5, opt);
  const auto res = sa.run(init, StopCondition::after_steps(20000));
  EXPECT_EQ(res.best.num_nonempty_parts(), 5);
}

TEST(Annealing, CoolingHappens) {
  const auto g = make_grid2d(8, 8);
  const auto init = percolation_partition(g, 4, {});
  AnnealingOptions opt;
  opt.seed = 15;
  SimulatedAnnealing sa(g, 4, opt);
  const auto res = sa.run(init, StopCondition::after_steps(50000));
  EXPECT_GT(res.coolings, 0);
  EXPECT_GT(res.accepted, 0);
}

TEST(Annealing, ExplicitTemperatureIsUsed) {
  const auto g = make_grid2d(6, 6);
  const auto init = percolation_partition(g, 3, {});
  AnnealingOptions opt;
  opt.tmax = 1e-12;  // effectively greedy: only improving moves
  opt.seed = 17;
  SimulatedAnnealing sa(g, 3, opt);
  const auto res = sa.run(init, StopCondition::after_steps(20000));
  const double init_value = objective(opt.objective).evaluate(init);
  EXPECT_LE(res.best_value, init_value + 1e-9);
}

TEST(Annealing, RejectsBadConfiguration) {
  const auto g = make_grid2d(4, 4);
  AnnealingOptions opt;
  EXPECT_THROW(SimulatedAnnealing(g, 1, opt), Error);
  EXPECT_THROW(SimulatedAnnealing(g, 17, opt), Error);
  opt.cooling = 1.5;
  EXPECT_THROW(SimulatedAnnealing(g, 4, opt), Error);
}

TEST(Annealing, RejectsForeignInitialPartition) {
  const auto g = make_grid2d(4, 4);
  const auto other = make_grid2d(4, 4);
  AnnealingOptions opt;
  SimulatedAnnealing sa(g, 2, opt);
  const Partition foreign(other, 2);
  EXPECT_THROW(sa.run(foreign, StopCondition::after_steps(10)), Error);
}

}  // namespace
}  // namespace ffp
