#include "spectral/linear_partition.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/balance.hpp"
#include "test_support.hpp"

namespace ffp {
namespace {

TEST(LinearPartition, ContiguousBlocks) {
  const auto g = make_path(12);
  const auto p = linear_partition(g, 3);
  ffp::testing::expect_valid_partition(p, 3);
  // Assignment must be non-decreasing over vertex ids.
  const auto assign = p.assignment();
  for (std::size_t i = 1; i < assign.size(); ++i) {
    EXPECT_GE(assign[i], assign[i - 1]);
  }
}

TEST(LinearPartition, BalancedOnUnitWeights) {
  const auto g = make_grid2d(6, 6);
  const auto p = linear_partition(g, 4);
  EXPECT_EQ(p.part_size(0), 9);
  EXPECT_EQ(p.part_size(3), 9);
  EXPECT_DOUBLE_EQ(imbalance(p, 4), 1.0);
}

TEST(LinearPartition, PathCutIsMinimal) {
  // On a path, contiguous blocks are optimal: k−1 cut edges.
  const auto g = make_path(20);
  const auto p = linear_partition(g, 5);
  EXPECT_DOUBLE_EQ(p.edge_cut(), 4.0);
}

TEST(LinearPartition, RespectsVertexWeights) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}};
  const auto g = Graph::from_edges(4, edges, {5.0, 1.0, 1.0, 5.0});
  const auto p = linear_partition(g, 2);
  // First block should stop after the heavy head (5 of 12 total) plus one.
  EXPECT_EQ(p.part_of(0), 0);
  EXPECT_EQ(p.part_of(3), 1);
}

TEST(LinearPartition, KEqualsN) {
  const auto g = make_path(5);
  const auto p = linear_partition(g, 5);
  ffp::testing::expect_valid_partition(p, 5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(p.part_of(v), v);
  }
}

TEST(LinearPartition, KEqualsOne) {
  const auto g = make_grid2d(3, 3);
  const auto p = linear_partition(g, 1);
  EXPECT_EQ(p.num_nonempty_parts(), 1);
}

TEST(LinearPartition, EveryPartNonEmptyEvenWithSkewedWeights) {
  std::vector<Weight> vw(10, 1.0);
  vw[0] = 100.0;  // front-loaded weight would starve later parts
  std::vector<WeightedEdge> edges;
  for (int i = 0; i + 1 < 10; ++i) edges.push_back({i, i + 1, 1.0});
  const auto g = Graph::from_edges(10, edges, std::move(vw));
  const auto p = linear_partition(g, 8);
  ffp::testing::expect_valid_partition(p, 8);
}

TEST(LinearPartition, RejectsBadK) {
  const auto g = make_path(3);
  EXPECT_THROW(linear_partition(g, 0), Error);
  EXPECT_THROW(linear_partition(g, 4), Error);
}

}  // namespace
}  // namespace ffp
