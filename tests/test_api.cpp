// The facade contract. The parity suite replicates the PRE-redesign
// ffp_part pipeline inline — raw SolverRequest + PortfolioRunner over a
// ThreadBudget, exactly the wiring the tools used to carry — and proves
// the facade produces byte-identical partitions at worker budgets
// {1, 4, 8} on all four generator families, single-run and portfolio.
// Plus: SolveHandle cancel/stream/poll semantics, result-cache behavior
// (including canonicalization-driven hits), and Problem sources.
#include "ffp/api.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "service/thread_budget.hpp"
#include "solver/portfolio.hpp"
#include "solver/registry.hpp"

namespace ffp {
namespace {

Graph family_graph(const std::string& family) {
  if (family == "grid") return make_grid2d(12, 12);
  if (family == "torus") return make_torus(12, 12);
  if (family == "geometric") return make_random_geometric(140, 0.18, 5);
  return make_power_law(140, 6.0, 2.5, 5);
}

std::vector<int> assignment_of(const Partition& p) {
  return {p.assignment().begin(), p.assignment().end()};
}

/// The legacy pipeline, verbatim: what ffp_part did before the facade.
std::vector<int> legacy_pipeline(const Graph& g, const std::string& method,
                                 int k, std::uint64_t seed, std::int64_t steps,
                                 int restarts, unsigned budget_size) {
  ThreadBudget budget(budget_size);
  const SolverPtr solver = make_solver(method);
  SolverRequest request;
  request.k = k;
  request.objective = ObjectiveKind::MinMaxCut;
  request.seed = seed;
  request.threads = budget_size;
  request.budget = &budget;
  request.stop = StopCondition::after_steps(steps);
  if (restarts > 1) {
    PortfolioOptions popt;
    popt.restarts = restarts;
    popt.threads = budget_size;
    popt.budget = &budget;
    return assignment_of(
        PortfolioRunner(solver, popt).run(g, request).best);
  }
  return assignment_of(solver->run(g, request).best);
}

std::vector<int> facade_pipeline(const Graph& g, const std::string& method,
                                 int k, std::uint64_t seed, std::int64_t steps,
                                 int restarts, unsigned budget_size) {
  ThreadBudget budget(budget_size);
  api::EngineOptions options;
  options.budget = &budget;
  api::Engine engine(options);
  api::SolveSpec spec;
  spec.method = method;
  spec.k = k;
  spec.objective = ObjectiveKind::MinMaxCut;
  spec.seed = seed;
  spec.steps = steps;
  spec.restarts = restarts;
  spec.threads = budget_size;
  return assignment_of(engine.solve(api::Problem::viewing(g), spec).best);
}

// Acceptance criterion: byte-identical ffp_part output before/after the
// redesign at budgets {1, 4, 8}, across the four generator families.
TEST(ApiParity, SingleRunMatchesLegacyPipelineAtAllBudgets) {
  for (const std::string family : {"grid", "torus", "geometric", "powerlaw"}) {
    const Graph g = family_graph(family);
    const std::vector<int> reference =
        legacy_pipeline(g, "fusion_fission", 6, 2006, 2000, 1, 1);
    for (const unsigned budget : {1u, 4u, 8u}) {
      EXPECT_EQ(legacy_pipeline(g, "fusion_fission", 6, 2006, 2000, 1, budget),
                reference)
          << family << " legacy diverged at budget " << budget;
      EXPECT_EQ(facade_pipeline(g, "fusion_fission", 6, 2006, 2000, 1, budget),
                reference)
          << family << " facade diverged at budget " << budget;
    }
  }
}

TEST(ApiParity, PortfolioMatchesLegacyPipelineAtAllBudgets) {
  for (const std::string family : {"grid", "geometric"}) {
    const Graph g = family_graph(family);
    const std::vector<int> reference =
        legacy_pipeline(g, "fusion_fission", 5, 17, 1200, 3, 1);
    for (const unsigned budget : {1u, 4u, 8u}) {
      EXPECT_EQ(facade_pipeline(g, "fusion_fission", 5, 17, 1200, 3, budget),
                reference)
          << family << " portfolio diverged at budget " << budget;
    }
  }
}

TEST(ApiParity, DirectSolversMatchToo) {
  const Graph g = family_graph("grid");
  EXPECT_EQ(facade_pipeline(g, "multilevel", 4, 3, 100, 1, 2),
            legacy_pipeline(g, "multilevel", 4, 3, 100, 1, 2));
  EXPECT_EQ(facade_pipeline(g, "linear:arity=2,kl=true", 4, 3, 100, 1, 1),
            legacy_pipeline(g, "linear:arity=2,kl=true", 4, 3, 100, 1, 1));
}

// ---------------------------------------------------------------- spec ----

TEST(SolveSpec, ResolvedStepsImplementsTheDeterminismRule) {
  api::SolveSpec spec;  // serial metaheuristic, wall clock
  spec.budget_ms = 100;
  EXPECT_EQ(spec.resolved_steps(), 0);
  EXPECT_FALSE(spec.deterministic());

  spec.steps = 777;  // explicit steps always win
  EXPECT_EQ(spec.resolved_steps(), 777);
  EXPECT_TRUE(spec.deterministic());

  spec.steps = 0;
  spec.restarts = 4;  // parallelism → derived step budget
  EXPECT_EQ(spec.resolved_steps(),
            static_cast<std::int64_t>(100 * api::SolveSpec::kStepsPerMs));
  spec.restarts = 1;
  spec.threads = 2;
  EXPECT_GT(spec.resolved_steps(), 0);
  spec.threads = 0;
  spec.method = "fusion_fission:threads=2";  // spec-side parallelism counts
  EXPECT_GT(spec.resolved_steps(), 0);

  spec.method = "multilevel";  // direct solver: no steps, yet deterministic
  spec.restarts = 1;
  EXPECT_EQ(spec.resolved_steps(), 0);
  EXPECT_TRUE(spec.deterministic());
}

TEST(SolveSpec, CacheKeyCapturesResultIdentityOnly) {
  api::SolveSpec spec;
  spec.steps = 1000;
  const std::string key = spec.cache_key();
  EXPECT_FALSE(key.empty());

  api::SolveSpec other = spec;
  other.priority = 9;  // cannot change the partition
  EXPECT_EQ(other.cache_key(), key);
  other = spec;
  other.threads = 2;  // selects the batched engine → different identity
  EXPECT_NE(other.cache_key(), key);
  other.threads = 3;  // ...but any positive count is the same schedule
  api::SolveSpec two = spec;
  two.threads = 2;
  EXPECT_EQ(other.cache_key(), two.cache_key());
  other = spec;
  other.seed = 999;
  EXPECT_NE(other.cache_key(), key);
  other = spec;
  other.method = "fusion_fission: nbt=800";
  api::SolveSpec canonical_twin = spec;
  canonical_twin.method = "fusion_fission:nbt=800";
  EXPECT_EQ(other.cache_key(), canonical_twin.cache_key());

  api::SolveSpec wall_clock;  // non-deterministic → never cacheable
  EXPECT_TRUE(wall_clock.cache_key().empty());
}

// -------------------------------------------------------------- problem ----

TEST(Problem, SourcesAndDigests) {
  const api::Problem grid = api::Problem::generated("grid2d:8,8");
  EXPECT_EQ(grid.graph().num_vertices(), 64);
  EXPECT_EQ(grid.source(), "gen:grid2d:8,8");
  EXPECT_EQ(grid.digest(), api::Problem::generated("grid2d:8,8").digest());
  EXPECT_NE(grid.digest(), api::Problem::generated("grid2d:8,9").digest());

  const api::Problem atc = api::Problem::from_any("atc:2006");
  EXPECT_GT(atc.graph().num_vertices(), 100);

  EXPECT_THROW(api::Problem::generated("bogus:1"), Error);
  EXPECT_THROW(api::Problem::generated("grid2d:8"), Error);     // missing arg
  EXPECT_THROW(api::Problem::generated("grid2d:8,x"), Error);   // bad arg
  EXPECT_THROW(api::Problem::from_any("/nonexistent.graph"), Error);
  EXPECT_THROW(api::Problem().graph(), Error);

  // Weights count: same topology, different weights → different digest.
  const Graph base = make_grid2d(6, 6);
  EXPECT_NE(api::Problem::from_graph(with_random_weights(base, 1, 9, 1))
                .digest(),
            api::Problem::from_graph(base).digest());
}

// --------------------------------------------------------------- handle ----

TEST(SolveHandle, CancelReturnsAnytimeBest) {
  api::Engine engine;
  api::SolveSpec spec;
  spec.k = 3;
  spec.steps = 80'000'000;  // far beyond the test's patience
  const api::SolveHandle handle =
      engine.submit(api::Problem::generated("path:60"), spec);
  handle.cancel();
  const JobStatus status = handle.wait();
  EXPECT_EQ(status.state, JobState::Cancelled);
  if (status.result != nullptr) {  // cancelled mid-run: anytime best-so-far
    EXPECT_EQ(status.result->best.graph().num_vertices(), 60);
  }
  EXPECT_FALSE(handle.cancel());  // already terminal
}

TEST(SolveHandle, StreamsImprovementsAndPolls) {
  api::Engine engine;
  api::SolveSpec spec;
  spec.k = 4;
  spec.steps = 2000;
  std::mutex mu;
  std::vector<double> values;
  const api::SolveHandle handle = engine.submit(
      api::Problem::generated("torus:10,10"), spec,
      [&](double seconds, double value) {
        std::lock_guard lock(mu);
        EXPECT_GE(seconds, 0.0);
        values.push_back(value);
      });
  const JobStatus status = handle.wait();
  EXPECT_EQ(status.state, JobState::Done);
  EXPECT_EQ(handle.poll().state, JobState::Done);
  std::lock_guard lock(mu);
  ASSERT_FALSE(values.empty());
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_LE(values[i], values[i - 1]) << "improvements must be monotone";
  }
  // The final improvement is the tracker's running value; best_value is a
  // fresh evaluation — identical up to incremental-update rounding.
  EXPECT_NEAR(values.back(), status.result->best_value,
              1e-6 * std::max(1.0, std::abs(status.result->best_value)));
}

TEST(SolveHandle, FailuresSurfaceThroughSolve) {
  api::Engine engine;
  api::SolveSpec spec;
  spec.method = "no_such_solver";
  EXPECT_THROW(engine.submit(api::Problem::generated("path:10"), spec), Error);
  EXPECT_THROW(engine.solve(api::Problem(), api::SolveSpec{}), Error);
}

// ---------------------------------------------------------------- cache ----

TEST(EngineCache, RepeatDeterministicSolvesHit) {
  api::EngineOptions options;
  options.cache_capacity = 2;
  api::Engine engine(options);
  const api::Problem problem = api::Problem::generated("grid2d:9,9");
  api::SolveSpec spec;
  spec.k = 4;
  spec.steps = 600;

  const auto first = engine.solve(problem, spec);
  const auto again = engine.solve(problem, spec);
  EXPECT_EQ(assignment_of(first.best), assignment_of(again.best));
  EXPECT_EQ(engine.cache_counters().hits, 1);
  EXPECT_EQ(engine.cache_counters().misses, 1);
  EXPECT_EQ(engine.cache_counters().entries, 1);

  // The cached handle is terminal at submit.
  const api::SolveHandle handle = engine.submit(problem, spec);
  EXPECT_TRUE(handle.cached());
  EXPECT_EQ(handle.job_id(), 0u);
  EXPECT_EQ(handle.wait().state, JobState::Done);

  // A different graph with the same spec must not collide.
  const auto other =
      engine.solve(api::Problem::generated("grid2d:9,10"), spec);
  EXPECT_EQ(engine.cache_counters().misses, 2);
  EXPECT_GT(other.best.graph().num_vertices(),
            first.best.graph().num_vertices());
}

TEST(EngineCache, CanonicalizationMakesEquivalentSpecsCollide) {
  api::EngineOptions options;
  options.cache_capacity = 4;
  api::Engine engine(options);
  const api::Problem problem = api::Problem::generated("grid2d:8,8");
  api::SolveSpec spec;
  spec.k = 3;
  spec.steps = 500;
  spec.method = "fusion_fission:threads=2";
  engine.solve(problem, spec);
  // Whitespace form, cosmetic spaces, trailing comma: same canonical spec.
  spec.method = "fusion_fission  threads=2 ";
  engine.solve(problem, spec);
  spec.method = "fusion_fission: threads=2 ,";
  engine.solve(problem, spec);
  EXPECT_EQ(engine.cache_counters().hits, 2);
  EXPECT_EQ(engine.cache_counters().misses, 1);
}

// Evolve-mode solves draw on (and feed) the elite archive, so the same
// spec legitimately returns different partitions over time: they must
// never be cached — and never even move the counters (the empty key is
// dropped before accounting, like warm starts).
TEST(EngineCache, EvolveSolvesBypassTheCache) {
  api::SolveSpec spec;
  spec.k = 3;
  spec.steps = 500;
  EXPECT_FALSE(spec.cache_key().empty());
  spec.evolve = true;
  EXPECT_TRUE(spec.cache_key().empty());

  api::EngineOptions options;
  options.cache_capacity = 4;
  api::Engine engine(options);
  const api::Problem problem = api::Problem::generated("grid2d:8,8");
  engine.solve(problem, spec);
  engine.solve(problem, spec);
  EXPECT_EQ(engine.cache_counters().hits, 0);
  EXPECT_EQ(engine.cache_counters().misses, 0);
  EXPECT_EQ(engine.cache_counters().entries, 0);
  // The archive, by contrast, did learn from both runs.
  EXPECT_GE(engine.archive_counters().elites, 1);
}

TEST(EngineCache, WallClockSolvesNeverTouchTheCache) {
  api::EngineOptions options;
  options.cache_capacity = 2;
  api::Engine engine(options);
  api::SolveSpec spec;  // wall clock, serial: not deterministic
  spec.k = 3;
  spec.budget_ms = 30;
  const api::Problem problem = api::Problem::generated("grid2d:8,8");
  engine.solve(problem, spec);
  engine.solve(problem, spec);
  EXPECT_EQ(engine.cache_counters().hits, 0);
  EXPECT_EQ(engine.cache_counters().misses, 0);
}

}  // namespace
}  // namespace ffp
