#include "core/choice.hpp"

#include <gtest/gtest.h>

namespace ffp {
namespace {

ChoiceParams params() {
  ChoiceParams p;
  p.target_size = 20.0;
  p.tmax = 1.0;
  p.tmin = 0.0;
  p.slope = 4.0;
  p.offset = 0.25;
  return p;
}

TEST(Choice, AlphaAtTemperatureExtremes) {
  const auto p = params();
  // Hot: alpha = offset. Cold: alpha = slope + offset.
  EXPECT_DOUBLE_EQ(choice_alpha(1.0, p), 0.25);
  EXPECT_DOUBLE_EQ(choice_alpha(0.0, p), 4.25);
  EXPECT_DOUBLE_EQ(choice_alpha(0.5, p), 2.25);
}

TEST(Choice, BigAtomsAlwaysFission) {
  const auto p = params();
  // Cold: window = 1/(2·4.25) ≈ 0.12 around 20.
  EXPECT_DOUBLE_EQ(fission_probability(40, 0.0, p), 1.0);
  EXPECT_DOUBLE_EQ(fission_probability(21, 0.0, p), 1.0);
}

TEST(Choice, SmallAtomsAlwaysFuse) {
  const auto p = params();
  EXPECT_DOUBLE_EQ(fission_probability(1, 0.0, p), 0.0);
  EXPECT_DOUBLE_EQ(fission_probability(19, 0.0, p), 0.0);
}

TEST(Choice, TargetSizeIsCoinFlip) {
  const auto p = params();
  EXPECT_NEAR(fission_probability(20, 0.0, p), 0.5, 1e-12);
  EXPECT_NEAR(fission_probability(20, 1.0, p), 0.5, 1e-12);
}

TEST(Choice, MonotoneInAtomSize) {
  const auto p = params();
  for (double t : {0.0, 0.4, 0.9}) {
    double prev = -1.0;
    for (int x = 1; x <= 45; ++x) {
      const double prob = fission_probability(x, t, p);
      EXPECT_GE(prob, prev - 1e-12) << "t=" << t << " x=" << x;
      EXPECT_GE(prob, 0.0);
      EXPECT_LE(prob, 1.0);
      prev = prob;
    }
  }
}

TEST(Choice, HotTemperatureWidensTheWindow) {
  const auto p = params();
  // Hot: window = 1/(2·0.25) = 2 around 20 → x=21 is inside, probabilistic.
  const double hot = fission_probability(21, 1.0, p);
  EXPECT_GT(hot, 0.5);
  EXPECT_LT(hot, 1.0);
  // Cold: same atom is a certain fission.
  EXPECT_DOUBLE_EQ(fission_probability(21, 0.0, p), 1.0);
}

TEST(Choice, PaperFormulaInsideWindow) {
  const auto p = params();
  // choice(x) = alpha (x − n̄) + 1/2 inside the window.
  const double t = 1.0;  // alpha = 0.25, window ±2
  EXPECT_NEAR(fission_probability(21, t, p), 0.25 * 1.0 + 0.5, 1e-12);
  EXPECT_NEAR(fission_probability(19, t, p), -0.25 + 0.5, 1e-12);
}

TEST(Choice, RejectsBadParameters) {
  auto p = params();
  p.offset = 0.0;
  EXPECT_THROW(fission_probability(5, 0.5, p), Error);
  p = params();
  p.tmax = p.tmin;
  EXPECT_THROW(choice_alpha(0.5, p), Error);
  EXPECT_THROW(fission_probability(0, 0.5, params()), Error);
}

}  // namespace
}  // namespace ffp
