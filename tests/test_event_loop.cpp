// EventLoopServer suite: the epoll transport must be a drop-in for the
// thread-per-connection TcpServer — same wire protocol, same policies,
// byte-identical results — while holding its headline promise: thousands
// of concurrent connections on a BOUNDED thread count (the loop thread
// plus the engine's runners, nothing per client).
//
// The determinism assertions all compare against a thread-server
// reference computed in-process: identical jobs at identical seeds must
// produce identical partitions through either transport, faults or not.
#include "net/event_loop.hpp"

#include <gtest/gtest.h>
#include <sys/resource.h>

#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "util/fault.hpp"

namespace ffp {
namespace {

struct FaultGuard {
  ~FaultGuard() { fault::configure(""); }
};

/// Host + EventLoopServer on an ephemeral port, pumping in a background
/// thread (the "loop thread" — the only thread the transport adds).
struct LoopServer {
  explicit LoopServer(ServiceOptions sopt = service_defaults(),
                      EventLoopOptions lopt = loop_defaults())
      : host(std::move(sopt)),
        server(host, std::move(lopt)),
        pump([this] { server.run(); }) {}

  ~LoopServer() {
    server.request_stop();
    if (pump.joinable()) pump.join();
  }

  static ServiceOptions service_defaults() {
    ServiceOptions options;
    options.runners = 2;
    return options;
  }
  static EventLoopOptions loop_defaults() {
    EventLoopOptions options;
    options.port = 0;
    options.idle_timeout_ms = 10000;
    options.write_timeout_ms = 10000;
    return options;
  }

  int port() const { return server.port(); }

  ServiceHost host;
  EventLoopServer server;
  std::thread pump;
};

/// A deterministic mixed batch: step-budgeted jobs over two graphs, two
/// k values and two objectives — enough variety that transport-dependent
/// reordering would show up as a diff.
std::vector<ClientJob> mixed_jobs() {
  std::string ring = "[";
  for (int v = 0; v < 12; ++v) {
    if (v > 0) ring += ",";
    ring += "[" + std::to_string(v) + "," + std::to_string((v + 1) % 12) + "]";
  }
  ring += "]";
  std::string grid = "[";
  bool first = true;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const int v = r * 4 + c;
      if (c + 1 < 4) {
        if (!first) grid += ",";
        first = false;
        grid += "[" + std::to_string(v) + "," + std::to_string(v + 1) + "]";
      }
      if (r + 1 < 4) {
        grid += ",[" + std::to_string(v) + "," + std::to_string(v + 4) + "]";
      }
    }
  }
  grid += "]";

  std::vector<ClientJob> jobs;
  const auto add = [&jobs](const std::string& id, const std::string& edges,
                           int n, int k, const std::string& objective,
                           int seed) {
    jobs.push_back(
        {id, "{\"op\":\"submit\",\"id\":\"" + id + "\",\"graph\":{\"n\":" +
                 std::to_string(n) + ",\"edges\":" + edges +
                 "},\"k\":" + std::to_string(k) + ",\"objective\":\"" +
                 objective + "\",\"steps\":400,\"seed\":" +
                 std::to_string(seed) + "}"});
  };
  add("m0", ring, 12, 2, "cut", 7);
  add("m1", ring, 12, 3, "mcut", 8);
  add("m2", grid, 16, 2, "ncut", 9);
  add("m3", grid, 16, 4, "cut", 10);
  add("m4", ring, 12, 2, "cut", 7);  // duplicate of m0: cache territory
  return jobs;
}

ServiceClientOptions client_options(int port) {
  ServiceClientOptions options;
  options.port = port;
  options.retry.max_attempts = 8;
  options.retry.base_ms = 5;
  options.retry.max_ms = 50;
  options.retry.seed = 11;
  options.io_timeout_ms = 10000;
  return options;
}

std::map<std::string, std::pair<std::vector<int>, double>> outcomes(
    const std::vector<ClientResult>& results) {
  std::map<std::string, std::pair<std::vector<int>, double>> out;
  for (const ClientResult& r : results) {
    EXPECT_TRUE(r.ok) << r.id << " failed [" << err_name(r.code)
                      << "]: " << r.error;
    if (!r.ok) continue;
    const JsonValue event = JsonValue::parse(r.result_line);
    std::vector<int> parts;
    for (const auto& p : event.find("partition")->as_array()) {
      parts.push_back(static_cast<int>(p.as_int()));
    }
    out[r.id] = {std::move(parts), event.find("value")->as_number()};
  }
  return out;
}

/// The thread-per-connection reference for the mixed batch — what the
/// event loop must reproduce byte for byte.
const std::map<std::string, std::pair<std::vector<int>, double>>&
thread_server_reference() {
  static const auto reference = [] {
    FaultGuard guard;
    fault::configure("");
    ServiceOptions sopt;
    sopt.runners = 2;
    ServiceHost host(std::move(sopt));
    TcpServerOptions topt;
    topt.port = 0;
    TcpServer server(host, std::move(topt));
    std::thread pump([&server] { server.run(); });
    ServiceClient client(client_options(server.port()));
    auto out = outcomes(client.run(mixed_jobs()));
    EXPECT_EQ(out.size(), mixed_jobs().size());
    server.request_stop();
    pump.join();
    return out;
  }();
  return reference;
}

int thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

TEST(EventLoop, MixedBatchMatchesThreadServerByteForByte) {
  const auto& reference = thread_server_reference();
  LoopServer server;
  ServiceClient client(client_options(server.port()));
  EXPECT_EQ(outcomes(client.run(mixed_jobs())), reference);
}

// The headline: >= 1024 concurrent connections, every one served, and
// the process thread count does not move — connections cost file
// descriptors, not threads.
TEST(EventLoop, SustainsAThousandConcurrentConnectionsWithBoundedThreads) {
  // Two fds per connection (client + server end), plus slack.
  rlimit limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &limit), 0);
  const rlim_t wanted = 4096;
  if (limit.rlim_cur < wanted && limit.rlim_max >= wanted) {
    rlimit raised = limit;
    raised.rlim_cur = wanted;
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &raised), 0);
  } else if (limit.rlim_max < wanted) {
    GTEST_SKIP() << "RLIMIT_NOFILE hard cap " << limit.rlim_max
                 << " cannot hold 2x1024 sockets";
  }

  constexpr int kConns = 1024;
  EventLoopOptions lopt = LoopServer::loop_defaults();
  lopt.max_clients = kConns + 8;
  LoopServer server(LoopServer::service_defaults(), lopt);

  const int threads_before = thread_count();
  ASSERT_GT(threads_before, 0);

  std::vector<FdHandle> conns;
  conns.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    conns.push_back(tcp_connect(server.port()));
  }

  // Every connection is live: each one gets a real response. (An unknown
  // job id is the cheapest request that proves a full round trip.)
  for (int i = 0; i < kConns; ++i) {
    write_line(conns[static_cast<std::size_t>(i)],
               R"({"op":"status","id":"probe"})", 10000);
  }
  for (int i = 0; i < kConns; ++i) {
    LineReader reader(conns[static_cast<std::size_t>(i)]);
    reader.set_timeout_ms(20000);
    std::string line;
    ASSERT_TRUE(reader.next(line)) << "connection " << i << " got no reply";
    EXPECT_EQ(JsonValue::parse(line).find("code")->as_string(), "unknown_job");
  }

  // 1024 live connections added ZERO threads: the loop was already
  // running, and nothing is spawned per client.
  const int threads_during = thread_count();
  EXPECT_LE(threads_during, threads_before)
      << "event loop grew threads with connection count";

  // With all of that held open, real work still flows end to end.
  FdHandle worker = tcp_connect(server.port());
  LineReader reader(worker);
  reader.set_timeout_ms(20000);
  write_line(worker, mixed_jobs()[0].submit_line, 10000);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  ASSERT_EQ(JsonValue::parse(line).find("event")->as_string(), "ack") << line;
  write_line(worker, R"({"op":"result","id":"m0"})", 10000);
  ASSERT_TRUE(reader.next(line));
  const JsonValue result = JsonValue::parse(line);
  ASSERT_EQ(result.find("event")->as_string(), "result") << line;
  EXPECT_EQ(result.find("value")->as_number(),
            thread_server_reference().at("m0").second);

  // The server reports what it is carrying.
  write_line(worker, R"({"op":"status","id":"m0"})", 10000);
  ASSERT_TRUE(reader.next(line));
  const JsonValue status = JsonValue::parse(line);
  ASSERT_NE(status.find("conns_open"), nullptr) << line;
  EXPECT_GE(status.find("conns_open")->as_int(), kConns);
  EXPECT_GE(status.find("conns_total")->as_int(), kConns + 1);
  EXPECT_GT(status.find("loop_wakeups")->as_int(), 0);
}

TEST(EventLoop, ShedsBeyondMaxClientsWithStructuredError) {
  EventLoopOptions lopt = LoopServer::loop_defaults();
  lopt.max_clients = 1;
  lopt.overload_retry_after_ms = 123;
  LoopServer server(LoopServer::service_defaults(), lopt);

  FdHandle holder = tcp_connect(server.port());
  {
    LineReader reader(holder);
    reader.set_timeout_ms(5000);
    write_line(holder, R"({"op":"status","id":"nope"})");
    std::string line;
    ASSERT_TRUE(reader.next(line));
    ASSERT_EQ(JsonValue::parse(line).find("code")->as_string(), "unknown_job");
  }

  FdHandle extra = tcp_connect(server.port());
  LineReader reader(extra);
  reader.set_timeout_ms(5000);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  const JsonValue event = JsonValue::parse(line);
  ASSERT_EQ(event.find("event")->as_string(), "error") << line;
  EXPECT_EQ(event.find("code")->as_string(), "overloaded") << line;
  EXPECT_TRUE(event.find("retryable")->as_bool()) << line;
  EXPECT_EQ(event.find("retry_after_ms")->as_number(), 123.0) << line;
  EXPECT_FALSE(reader.next(line));
  extra.reset();

  // The shed is counted.
  LineReader holder_reader(holder);
  holder_reader.set_timeout_ms(5000);
  write_line(holder, R"({"op":"status","id":"nope"})");
  ASSERT_TRUE(holder_reader.next(line));
  // (unknown_job error still carries no counters; use the host directly)
  EXPECT_GE(server.host.serve_stats().snapshot().sheds, 1);
}

TEST(EventLoop, ReapsIdleConnectionsWithAStructuredGoodbye) {
  EventLoopOptions lopt = LoopServer::loop_defaults();
  lopt.idle_timeout_ms = 200;
  LoopServer server(LoopServer::service_defaults(), lopt);

  FdHandle idle = tcp_connect(server.port());
  LineReader reader(idle);
  reader.set_timeout_ms(5000);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  const JsonValue event = JsonValue::parse(line);
  EXPECT_EQ(event.find("event")->as_string(), "error") << line;
  EXPECT_EQ(event.find("code")->as_string(), "timeout") << line;
  EXPECT_FALSE(reader.next(line));

  // The freed slot serves the next client normally.
  FdHandle live = tcp_connect(server.port());
  LineReader live_reader(live);
  live_reader.set_timeout_ms(5000);
  write_line(live, mixed_jobs()[0].submit_line);
  ASSERT_TRUE(live_reader.next(line));
  EXPECT_EQ(JsonValue::parse(line).find("event")->as_string(), "ack") << line;
}

TEST(EventLoop, RemoteShutdownForbiddenWhenThePolicyDeniesIt) {
  // ffp_serve's default stance: remote shutdown stays off unless
  // --allow-remote-shutdown flips the session policy.
  EventLoopOptions lopt = LoopServer::loop_defaults();
  lopt.session.allow_shutdown = false;
  LoopServer server(LoopServer::service_defaults(), lopt);
  FdHandle conn = tcp_connect(server.port());
  LineReader reader(conn);
  reader.set_timeout_ms(5000);
  write_line(conn, R"({"op":"shutdown"})");
  std::string line;
  ASSERT_TRUE(reader.next(line));
  const JsonValue event = JsonValue::parse(line);
  EXPECT_EQ(event.find("event")->as_string(), "error") << line;
  EXPECT_EQ(event.find("code")->as_string(), "forbidden") << line;

  write_line(conn, mixed_jobs()[0].submit_line);
  ASSERT_TRUE(reader.next(line));
  EXPECT_EQ(JsonValue::parse(line).find("event")->as_string(), "ack") << line;
}

/// One chaos scenario against the EVENT LOOP transport: full success and
/// byte-identical outcomes vs the thread-server reference.
void run_loop_chaos(const std::string& spec, bool expect_fires) {
  const auto& reference = thread_server_reference();
  FaultGuard guard;
  LoopServer server;
  fault::configure(spec);
  ServiceClient client(client_options(server.port()));
  const auto chaos = outcomes(client.run(mixed_jobs()));
  if (expect_fires) {
    EXPECT_GT(fault::fires(), 0) << "scenario injected nothing: " << spec;
  }
  fault::configure("");
  EXPECT_EQ(chaos, reference) << "results diverged under: " << spec;
}

TEST(EventLoopChaos, SurvivesConnectionDrops) {
  run_loop_chaos("conn_drop=1;seed=5;max_fires=3", true);
}

TEST(EventLoopChaos, SurvivesShortReads) {
  // Every recv one byte: the loop's incremental framing must reassemble
  // from maximal fragmentation, exactly like LineReader does.
  run_loop_chaos("short_read=1;seed=5", true);
}

TEST(EventLoopChaos, SurvivesTornWrites) {
  run_loop_chaos("torn_write=1;seed=5;max_fires=2", true);
}

TEST(EventLoopChaos, SurvivesDelayedResponses) {
  run_loop_chaos("delay_response=1;delay_ms=30;seed=5;max_fires=4", true);
}

TEST(EventLoopChaos, SurvivesMixedFaults) {
  run_loop_chaos(
      "conn_drop=0.3;short_read=0.3;torn_write=0.2;seed=17;max_fires=6",
      false /* probabilistic: may fire zero times */);
}

TEST(EventLoop, GracefulDrainWithAJobInFlight) {
  LoopServer server;
  FdHandle conn = tcp_connect(server.port());
  LineReader reader(conn);
  reader.set_timeout_ms(5000);
  write_line(conn,
             R"({"op":"submit","id":"slow","graph":{"n":8,"edges":)"
             R"([[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,0]]},)"
             R"("k":2,"budget_ms":60000})");
  std::string line;
  ASSERT_TRUE(reader.next(line));
  ASSERT_EQ(JsonValue::parse(line).find("event")->as_string(), "ack") << line;

  // The drain must cancel the running job and return well within the
  // ctest timeout — that timeout is the real assertion.
  server.server.request_stop();
  server.pump.join();
}

}  // namespace
}  // namespace ffp
