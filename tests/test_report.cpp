#include "partition/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "partition/objectives.hpp"

namespace ffp {
namespace {

TEST(Report, PathBisectionNumbers) {
  const auto g = make_path(4);
  const auto p = Partition::from_assignment(g, std::vector<int>{0, 0, 1, 1});
  const auto r = analyze(p);
  EXPECT_EQ(r.num_parts, 2);
  EXPECT_DOUBLE_EQ(r.edge_cut, 1.0);
  EXPECT_DOUBLE_EQ(r.cut, 2.0);
  EXPECT_NEAR(r.ncut, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.mcut, 1.0, 1e-12);
  ASSERT_EQ(r.parts.size(), 2u);
  EXPECT_EQ(r.parts[0].size, 2);
  EXPECT_DOUBLE_EQ(r.parts[0].internal_weight, 1.0);
  EXPECT_DOUBLE_EQ(r.parts[0].cut_weight, 1.0);
  EXPECT_EQ(r.parts[0].boundary_vertices, 1);
}

TEST(Report, MatchesObjectiveFunctions) {
  const auto g = with_random_weights(make_grid2d(6, 6), 1.0, 4.0, 3);
  Rng rng(5);
  std::vector<int> assign(36);
  for (auto& a : assign) a = static_cast<int>(rng.below(4));
  const auto p = Partition::from_assignment(g, assign, 4);
  const auto r = analyze(p);
  EXPECT_NEAR(r.ncut, objective(ObjectiveKind::NormalizedCut).evaluate(p), 1e-12);
  EXPECT_NEAR(r.mcut, objective(ObjectiveKind::MinMaxCut).evaluate(p), 1e-12);
  EXPECT_NEAR(r.ratio_cut, objective(ObjectiveKind::RatioCut).evaluate(p), 1e-12);
}

TEST(Report, PartsSortedAndComplete) {
  const auto g = make_cycle(9);
  const auto p = Partition::from_assignment(
      g, std::vector<int>{2, 2, 2, 0, 0, 0, 1, 1, 1});
  const auto r = analyze(p);
  ASSERT_EQ(r.parts.size(), 3u);
  EXPECT_EQ(r.parts[0].part, 0);
  EXPECT_EQ(r.parts[1].part, 1);
  EXPECT_EQ(r.parts[2].part, 2);
  int total = 0;
  for (const auto& pr : r.parts) total += pr.size;
  EXPECT_EQ(total, 9);
}

TEST(Report, SkipsEmptyParts) {
  const auto g = make_path(4);
  const auto p =
      Partition::from_assignment(g, std::vector<int>{0, 0, 3, 3}, 6);
  const auto r = analyze(p);
  EXPECT_EQ(r.num_parts, 2);
  EXPECT_EQ(r.parts.size(), 2u);
}

TEST(Report, TextRenderingContainsRows) {
  const auto g = make_grid2d(4, 4);
  const auto p = Partition::from_assignment(
      g, std::vector<int>{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3});
  std::ostringstream os;
  os << analyze(p);
  const std::string text = os.str();
  EXPECT_NE(text.find("4 parts"), std::string::npos);
  EXPECT_NE(text.find("boundary"), std::string::npos);
  // One line per part plus two header-ish lines.
  EXPECT_GE(std::count(text.begin(), text.end(), '\n'), 6);
}

TEST(Report, SingletonPartGetsPenaltyTerm) {
  const auto g = make_star(4);
  std::vector<int> assign(5, 0);
  assign[1] = 1;
  const auto r = analyze(Partition::from_assignment(g, assign, 2));
  ASSERT_EQ(r.parts.size(), 2u);
  EXPECT_GE(r.parts[1].mcut_term, kZeroDenominatorPenalty);
}

}  // namespace
}  // namespace ffp
