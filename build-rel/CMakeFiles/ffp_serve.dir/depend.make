# Empty dependencies file for ffp_serve.
# This may be replaced when dependencies are built.
