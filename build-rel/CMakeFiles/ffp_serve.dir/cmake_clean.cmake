file(REMOVE_RECURSE
  "CMakeFiles/ffp_serve.dir/tools/ffp_serve.cpp.o"
  "CMakeFiles/ffp_serve.dir/tools/ffp_serve.cpp.o.d"
  "ffp_serve"
  "ffp_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffp_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
