# Empty dependencies file for bench_perf_suite.
# This may be replaced when dependencies are built.
