file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_suite.dir/bench/perf_suite.cpp.o"
  "CMakeFiles/bench_perf_suite.dir/bench/perf_suite.cpp.o.d"
  "bench_perf_suite"
  "bench_perf_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
