# Empty dependencies file for bench_ablation_laws.
# This may be replaced when dependencies are built.
