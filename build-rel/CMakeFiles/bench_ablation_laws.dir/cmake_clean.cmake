file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_laws.dir/bench/ablation_laws.cpp.o"
  "CMakeFiles/bench_ablation_laws.dir/bench/ablation_laws.cpp.o.d"
  "bench_ablation_laws"
  "bench_ablation_laws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
