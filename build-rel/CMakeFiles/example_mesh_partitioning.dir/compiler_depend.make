# Empty compiler generated dependencies file for example_mesh_partitioning.
# This may be replaced when dependencies are built.
