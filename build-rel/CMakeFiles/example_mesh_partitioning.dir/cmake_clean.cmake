file(REMOVE_RECURSE
  "CMakeFiles/example_mesh_partitioning.dir/examples/mesh_partitioning.cpp.o"
  "CMakeFiles/example_mesh_partitioning.dir/examples/mesh_partitioning.cpp.o.d"
  "example_mesh_partitioning"
  "example_mesh_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mesh_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
