file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_choice.dir/bench/ablation_choice.cpp.o"
  "CMakeFiles/bench_ablation_choice.dir/bench/ablation_choice.cpp.o.d"
  "bench_ablation_choice"
  "bench_ablation_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
