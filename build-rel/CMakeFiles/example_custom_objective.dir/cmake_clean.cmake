file(REMOVE_RECURSE
  "CMakeFiles/example_custom_objective.dir/examples/custom_objective.cpp.o"
  "CMakeFiles/example_custom_objective.dir/examples/custom_objective.cpp.o.d"
  "example_custom_objective"
  "example_custom_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
