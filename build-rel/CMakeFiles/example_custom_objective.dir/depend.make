# Empty dependencies file for example_custom_objective.
# This may be replaced when dependencies are built.
