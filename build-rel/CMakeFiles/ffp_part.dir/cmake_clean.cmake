file(REMOVE_RECURSE
  "CMakeFiles/ffp_part.dir/tools/ffp_part.cpp.o"
  "CMakeFiles/ffp_part.dir/tools/ffp_part.cpp.o.d"
  "ffp_part"
  "ffp_part.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffp_part.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
