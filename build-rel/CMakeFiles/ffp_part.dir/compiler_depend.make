# Empty compiler generated dependencies file for ffp_part.
# This may be replaced when dependencies are built.
