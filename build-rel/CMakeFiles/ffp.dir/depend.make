# Empty dependencies file for ffp.
# This may be replaced when dependencies are built.
