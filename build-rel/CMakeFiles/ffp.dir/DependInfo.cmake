
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/engine.cpp" "CMakeFiles/ffp.dir/src/api/engine.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/api/engine.cpp.o.d"
  "/root/repo/src/api/problem.cpp" "CMakeFiles/ffp.dir/src/api/problem.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/api/problem.cpp.o.d"
  "/root/repo/src/api/result_cache.cpp" "CMakeFiles/ffp.dir/src/api/result_cache.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/api/result_cache.cpp.o.d"
  "/root/repo/src/api/solve_spec.cpp" "CMakeFiles/ffp.dir/src/api/solve_spec.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/api/solve_spec.cpp.o.d"
  "/root/repo/src/atc/airspace.cpp" "CMakeFiles/ffp.dir/src/atc/airspace.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/atc/airspace.cpp.o.d"
  "/root/repo/src/atc/core_area.cpp" "CMakeFiles/ffp.dir/src/atc/core_area.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/atc/core_area.cpp.o.d"
  "/root/repo/src/atc/flows.cpp" "CMakeFiles/ffp.dir/src/atc/flows.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/atc/flows.cpp.o.d"
  "/root/repo/src/atc/geojson.cpp" "CMakeFiles/ffp.dir/src/atc/geojson.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/atc/geojson.cpp.o.d"
  "/root/repo/src/benchlib/budget.cpp" "CMakeFiles/ffp.dir/src/benchlib/budget.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/benchlib/budget.cpp.o.d"
  "/root/repo/src/benchlib/methods.cpp" "CMakeFiles/ffp.dir/src/benchlib/methods.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/benchlib/methods.cpp.o.d"
  "/root/repo/src/benchlib/table.cpp" "CMakeFiles/ffp.dir/src/benchlib/table.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/benchlib/table.cpp.o.d"
  "/root/repo/src/core/batch_scheduler.cpp" "CMakeFiles/ffp.dir/src/core/batch_scheduler.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/core/batch_scheduler.cpp.o.d"
  "/root/repo/src/core/choice.cpp" "CMakeFiles/ffp.dir/src/core/choice.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/core/choice.cpp.o.d"
  "/root/repo/src/core/fusion_fission.cpp" "CMakeFiles/ffp.dir/src/core/fusion_fission.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/core/fusion_fission.cpp.o.d"
  "/root/repo/src/core/laws.cpp" "CMakeFiles/ffp.dir/src/core/laws.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/core/laws.cpp.o.d"
  "/root/repo/src/core/scaling.cpp" "CMakeFiles/ffp.dir/src/core/scaling.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/core/scaling.cpp.o.d"
  "/root/repo/src/evolve/elite_archive.cpp" "CMakeFiles/ffp.dir/src/evolve/elite_archive.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/evolve/elite_archive.cpp.o.d"
  "/root/repo/src/evolve/operators.cpp" "CMakeFiles/ffp.dir/src/evolve/operators.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/evolve/operators.cpp.o.d"
  "/root/repo/src/evolve/plan.cpp" "CMakeFiles/ffp.dir/src/evolve/plan.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/evolve/plan.cpp.o.d"
  "/root/repo/src/graph/connectivity.cpp" "CMakeFiles/ffp.dir/src/graph/connectivity.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/graph/connectivity.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "CMakeFiles/ffp.dir/src/graph/generators.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "CMakeFiles/ffp.dir/src/graph/graph.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "CMakeFiles/ffp.dir/src/graph/io.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/graph/io.cpp.o.d"
  "/root/repo/src/linalg/lanczos.cpp" "CMakeFiles/ffp.dir/src/linalg/lanczos.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/linalg/lanczos.cpp.o.d"
  "/root/repo/src/linalg/operators.cpp" "CMakeFiles/ffp.dir/src/linalg/operators.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/linalg/operators.cpp.o.d"
  "/root/repo/src/linalg/rqi.cpp" "CMakeFiles/ffp.dir/src/linalg/rqi.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/linalg/rqi.cpp.o.d"
  "/root/repo/src/linalg/symmlq.cpp" "CMakeFiles/ffp.dir/src/linalg/symmlq.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/linalg/symmlq.cpp.o.d"
  "/root/repo/src/linalg/tridiag.cpp" "CMakeFiles/ffp.dir/src/linalg/tridiag.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/linalg/tridiag.cpp.o.d"
  "/root/repo/src/metaheuristics/annealing.cpp" "CMakeFiles/ffp.dir/src/metaheuristics/annealing.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/metaheuristics/annealing.cpp.o.d"
  "/root/repo/src/metaheuristics/ant_colony.cpp" "CMakeFiles/ffp.dir/src/metaheuristics/ant_colony.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/metaheuristics/ant_colony.cpp.o.d"
  "/root/repo/src/metaheuristics/percolation.cpp" "CMakeFiles/ffp.dir/src/metaheuristics/percolation.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/metaheuristics/percolation.cpp.o.d"
  "/root/repo/src/multilevel/coarsen.cpp" "CMakeFiles/ffp.dir/src/multilevel/coarsen.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/multilevel/coarsen.cpp.o.d"
  "/root/repo/src/multilevel/matching.cpp" "CMakeFiles/ffp.dir/src/multilevel/matching.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/multilevel/matching.cpp.o.d"
  "/root/repo/src/multilevel/mlff.cpp" "CMakeFiles/ffp.dir/src/multilevel/mlff.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/multilevel/mlff.cpp.o.d"
  "/root/repo/src/multilevel/multilevel.cpp" "CMakeFiles/ffp.dir/src/multilevel/multilevel.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/multilevel/multilevel.cpp.o.d"
  "/root/repo/src/partition/balance.cpp" "CMakeFiles/ffp.dir/src/partition/balance.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/partition/balance.cpp.o.d"
  "/root/repo/src/partition/objective_tracker.cpp" "CMakeFiles/ffp.dir/src/partition/objective_tracker.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/partition/objective_tracker.cpp.o.d"
  "/root/repo/src/partition/objectives.cpp" "CMakeFiles/ffp.dir/src/partition/objectives.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/partition/objectives.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "CMakeFiles/ffp.dir/src/partition/partition.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/partition/partition.cpp.o.d"
  "/root/repo/src/partition/report.cpp" "CMakeFiles/ffp.dir/src/partition/report.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/partition/report.cpp.o.d"
  "/root/repo/src/persist/atomic_file.cpp" "CMakeFiles/ffp.dir/src/persist/atomic_file.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/persist/atomic_file.cpp.o.d"
  "/root/repo/src/persist/checkpoint.cpp" "CMakeFiles/ffp.dir/src/persist/checkpoint.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/persist/checkpoint.cpp.o.d"
  "/root/repo/src/persist/journal.cpp" "CMakeFiles/ffp.dir/src/persist/journal.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/persist/journal.cpp.o.d"
  "/root/repo/src/refine/fm_bisection.cpp" "CMakeFiles/ffp.dir/src/refine/fm_bisection.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/refine/fm_bisection.cpp.o.d"
  "/root/repo/src/refine/kl_bisection.cpp" "CMakeFiles/ffp.dir/src/refine/kl_bisection.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/refine/kl_bisection.cpp.o.d"
  "/root/repo/src/refine/kway_fm.cpp" "CMakeFiles/ffp.dir/src/refine/kway_fm.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/refine/kway_fm.cpp.o.d"
  "/root/repo/src/service/client.cpp" "CMakeFiles/ffp.dir/src/service/client.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/service/client.cpp.o.d"
  "/root/repo/src/service/errors.cpp" "CMakeFiles/ffp.dir/src/service/errors.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/service/errors.cpp.o.d"
  "/root/repo/src/service/job_scheduler.cpp" "CMakeFiles/ffp.dir/src/service/job_scheduler.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/service/job_scheduler.cpp.o.d"
  "/root/repo/src/service/json.cpp" "CMakeFiles/ffp.dir/src/service/json.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/service/json.cpp.o.d"
  "/root/repo/src/service/net.cpp" "CMakeFiles/ffp.dir/src/service/net.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/service/net.cpp.o.d"
  "/root/repo/src/service/protocol.cpp" "CMakeFiles/ffp.dir/src/service/protocol.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/service/protocol.cpp.o.d"
  "/root/repo/src/service/server.cpp" "CMakeFiles/ffp.dir/src/service/server.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/service/server.cpp.o.d"
  "/root/repo/src/service/service.cpp" "CMakeFiles/ffp.dir/src/service/service.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/service/service.cpp.o.d"
  "/root/repo/src/service/thread_budget.cpp" "CMakeFiles/ffp.dir/src/service/thread_budget.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/service/thread_budget.cpp.o.d"
  "/root/repo/src/solver/portfolio.cpp" "CMakeFiles/ffp.dir/src/solver/portfolio.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/solver/portfolio.cpp.o.d"
  "/root/repo/src/solver/registry.cpp" "CMakeFiles/ffp.dir/src/solver/registry.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/solver/registry.cpp.o.d"
  "/root/repo/src/solver/solver.cpp" "CMakeFiles/ffp.dir/src/solver/solver.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/solver/solver.cpp.o.d"
  "/root/repo/src/solver/worker_pool.cpp" "CMakeFiles/ffp.dir/src/solver/worker_pool.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/solver/worker_pool.cpp.o.d"
  "/root/repo/src/spectral/fiedler.cpp" "CMakeFiles/ffp.dir/src/spectral/fiedler.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/spectral/fiedler.cpp.o.d"
  "/root/repo/src/spectral/laplacian.cpp" "CMakeFiles/ffp.dir/src/spectral/laplacian.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/spectral/laplacian.cpp.o.d"
  "/root/repo/src/spectral/linear_partition.cpp" "CMakeFiles/ffp.dir/src/spectral/linear_partition.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/spectral/linear_partition.cpp.o.d"
  "/root/repo/src/spectral/spectral_partition.cpp" "CMakeFiles/ffp.dir/src/spectral/spectral_partition.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/spectral/spectral_partition.cpp.o.d"
  "/root/repo/src/util/fault.cpp" "CMakeFiles/ffp.dir/src/util/fault.cpp.o" "gcc" "CMakeFiles/ffp.dir/src/util/fault.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
