file(REMOVE_RECURSE
  "libffp.a"
)
