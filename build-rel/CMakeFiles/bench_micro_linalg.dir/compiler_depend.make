# Empty compiler generated dependencies file for bench_micro_linalg.
# This may be replaced when dependencies are built.
