file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_linalg.dir/bench/micro_linalg.cpp.o"
  "CMakeFiles/bench_micro_linalg.dir/bench/micro_linalg.cpp.o.d"
  "bench_micro_linalg"
  "bench_micro_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
