# Empty dependencies file for ffp_gen.
# This may be replaced when dependencies are built.
