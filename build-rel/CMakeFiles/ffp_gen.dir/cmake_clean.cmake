file(REMOVE_RECURSE
  "CMakeFiles/ffp_gen.dir/tools/ffp_gen.cpp.o"
  "CMakeFiles/ffp_gen.dir/tools/ffp_gen.cpp.o.d"
  "ffp_gen"
  "ffp_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffp_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
