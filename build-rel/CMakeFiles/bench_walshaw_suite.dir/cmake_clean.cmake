file(REMOVE_RECURSE
  "CMakeFiles/bench_walshaw_suite.dir/bench/walshaw_suite.cpp.o"
  "CMakeFiles/bench_walshaw_suite.dir/bench/walshaw_suite.cpp.o.d"
  "bench_walshaw_suite"
  "bench_walshaw_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_walshaw_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
