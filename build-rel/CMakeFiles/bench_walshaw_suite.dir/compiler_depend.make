# Empty compiler generated dependencies file for bench_walshaw_suite.
# This may be replaced when dependencies are built.
