file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_partition.dir/bench/micro_partition.cpp.o"
  "CMakeFiles/bench_micro_partition.dir/bench/micro_partition.cpp.o.d"
  "bench_micro_partition"
  "bench_micro_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
