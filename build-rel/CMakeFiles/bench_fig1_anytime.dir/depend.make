# Empty dependencies file for bench_fig1_anytime.
# This may be replaced when dependencies are built.
