file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_anytime.dir/bench/fig1_anytime.cpp.o"
  "CMakeFiles/bench_fig1_anytime.dir/bench/fig1_anytime.cpp.o.d"
  "bench_fig1_anytime"
  "bench_fig1_anytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_anytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
