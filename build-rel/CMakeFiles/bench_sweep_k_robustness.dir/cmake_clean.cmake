file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_k_robustness.dir/bench/sweep_k_robustness.cpp.o"
  "CMakeFiles/bench_sweep_k_robustness.dir/bench/sweep_k_robustness.cpp.o.d"
  "bench_sweep_k_robustness"
  "bench_sweep_k_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_k_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
