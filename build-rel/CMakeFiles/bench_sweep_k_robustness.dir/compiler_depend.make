# Empty compiler generated dependencies file for bench_sweep_k_robustness.
# This may be replaced when dependencies are built.
