# Empty dependencies file for bench_table1_compare.
# This may be replaced when dependencies are built.
