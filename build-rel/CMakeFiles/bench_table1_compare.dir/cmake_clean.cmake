file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_compare.dir/bench/table1_compare.cpp.o"
  "CMakeFiles/bench_table1_compare.dir/bench/table1_compare.cpp.o.d"
  "bench_table1_compare"
  "bench_table1_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
