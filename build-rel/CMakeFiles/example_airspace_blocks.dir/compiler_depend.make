# Empty compiler generated dependencies file for example_airspace_blocks.
# This may be replaced when dependencies are built.
