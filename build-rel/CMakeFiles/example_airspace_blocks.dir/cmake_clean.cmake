file(REMOVE_RECURSE
  "CMakeFiles/example_airspace_blocks.dir/examples/airspace_blocks.cpp.o"
  "CMakeFiles/example_airspace_blocks.dir/examples/airspace_blocks.cpp.o.d"
  "example_airspace_blocks"
  "example_airspace_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_airspace_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
