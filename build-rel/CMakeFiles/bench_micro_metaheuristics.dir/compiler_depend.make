# Empty compiler generated dependencies file for bench_micro_metaheuristics.
# This may be replaced when dependencies are built.
