file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_metaheuristics.dir/bench/micro_metaheuristics.cpp.o"
  "CMakeFiles/bench_micro_metaheuristics.dir/bench/micro_metaheuristics.cpp.o.d"
  "bench_micro_metaheuristics"
  "bench_micro_metaheuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_metaheuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
