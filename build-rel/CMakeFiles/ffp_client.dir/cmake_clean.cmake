file(REMOVE_RECURSE
  "CMakeFiles/ffp_client.dir/tools/ffp_client.cpp.o"
  "CMakeFiles/ffp_client.dir/tools/ffp_client.cpp.o.d"
  "ffp_client"
  "ffp_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ffp_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
