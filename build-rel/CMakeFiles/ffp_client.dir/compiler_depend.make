# Empty compiler generated dependencies file for ffp_client.
# This may be replaced when dependencies are built.
